"""Cell specifications: declarative, picklable scenario descriptions.

A *cell* is one independent, deterministic simulation — a (scenario kind,
scheduler, rate, seed, workload, config) point of a figure or sweep.  The
figure drivers used to call the runner functions directly with workload
*closures*; closures neither pickle (so they cannot cross a process
boundary) nor hash (so their results cannot be cached).  A
:class:`CellSpec` is the declarative replacement: plain frozen dataclasses
that

* **pickle** — so a :class:`~concurrent.futures.ProcessPoolExecutor`
  worker can receive them under the spawn start method;
* **canonicalise** — :meth:`CellSpec.canonical` renders a spec as one
  deterministic JSON string, which is both the merge key of a batch run
  and the input of the content-addressed cache key;
* **execute** — :func:`execute_cell` dispatches a spec to the matching
  ``run_*`` function in :mod:`repro.experiments.runner`.

Nothing here runs inside the simulated world; this module is host-side
tooling (see ``TOOLING_PACKAGES`` in :mod:`repro.analysis.simlint`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import SchedulerConfig
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec

__all__ = [
    "CellSpec",
    "WorkloadSpec",
    "canonical_value",
    "execute_cell",
    "from_canonical",
    "multi_vm_cell",
    "result_fingerprint",
    "single_vm_cell",
    "specjbb_cell",
]

#: Scenario kinds a cell can describe, matching the runner entry points.
CELL_KINDS: Tuple[str, ...] = ("single_vm", "multi_vm", "specjbb")

#: Workload families resolvable by :meth:`WorkloadSpec.build`.
WORKLOAD_FAMILIES: Tuple[str, ...] = ("nas", "speccpu", "synthetic")


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative workload: family + profile name + scale + rounds.

    Replaces the figure drivers' workload factory closures with something
    that pickles and canonicalises.  :meth:`build` constructs the actual
    :class:`~repro.workloads.base.Workload` instance (fresh per call —
    workloads are stateful and must never be shared between runs).
    """

    family: str
    name: str
    scale: float = 1.0
    rounds: int = 1

    def __post_init__(self) -> None:
        if self.family not in WORKLOAD_FAMILIES:
            raise ConfigurationError(
                f"unknown workload family {self.family!r}; "
                f"choose from {WORKLOAD_FAMILIES}")
        if self.scale <= 0:
            raise ConfigurationError("workload scale must be positive")
        if self.rounds < 1:
            raise ConfigurationError("workload rounds must be >= 1")

    def build(self):
        """Construct a fresh workload instance for one simulation."""
        # Lazy imports keep repro.parallel importable without dragging the
        # whole experiments/workloads tree in at module-import time (and
        # avoid an import cycle with repro.experiments).
        if self.family == "nas":
            from repro.workloads.nas import NasBenchmark
            return NasBenchmark.by_name(self.name, scale=self.scale,
                                        rounds=self.rounds)
        if self.family == "speccpu":
            from repro.workloads.speccpu import SpecCpuRateWorkload
            return SpecCpuRateWorkload.by_name(self.name, scale=self.scale,
                                               rounds=self.rounds)
        from repro.workloads.synthetic import SyntheticWorkload
        return SyntheticWorkload.by_name(self.name, scale=self.scale,
                                         rounds=self.rounds)


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation cell.

    ``kind`` selects the scenario; the remaining fields mirror the
    keyword arguments of the matching runner function.  ``None`` means
    "the runner's default" and canonicalises as ``null`` — the
    code-version salt of the cache covers changes to those defaults.
    """

    kind: str
    scheduler: str = "credit"
    seed: int = 1
    num_pcpus: int = 8
    num_vcpus: int = 4
    #: single_vm / specjbb: the VCPU online rate steering the VM weight.
    online_rate: float = 1.0
    #: single_vm: the workload to run inside V1.
    workload: Optional[WorkloadSpec] = None
    collect_scatter: bool = False
    #: multi_vm: (vm_name, workload, concurrent_hint) triples.
    assignments: Tuple[Tuple[str, WorkloadSpec, bool], ...] = ()
    measure_rounds: int = 2
    #: specjbb: warehouse count and measurement window.
    warehouses: int = 0
    window_cycles: Optional[int] = None
    warmup_cycles: Optional[int] = None
    deadline_cycles: Optional[int] = None
    #: Overrides the runner's scenario-default SchedulerConfig.
    sched_config: Optional[SchedulerConfig] = None
    #: "raise" (default) propagates SimulationError on deadline; "return"
    #: yields a structured unfinished result instead (pool-friendly).
    on_deadline: str = "raise"
    #: Fault-injection scenario (:mod:`repro.faults`); None or a no-op
    #: spec means the pristine system.  Part of the canonical form, so
    #: faulted cells merge and cache separately from clean ones.
    faults: Optional[FaultSpec] = None
    #: single_vm: attach a timeline collector and report the co-online
    #: fraction (the robustness experiment's headline metric).
    collect_timeline: bool = False
    #: Trace categories to retain and return as canonical event tuples
    #: (``result.trace_events``) — the golden-trace record/replay feed
    #: of :mod:`repro.conformance`.  Empty means no trace capture.
    collect_trace: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ConfigurationError(
                f"unknown cell kind {self.kind!r}; choose from {CELL_KINDS}")
        if self.kind == "single_vm" and self.workload is None:
            raise ConfigurationError("single_vm cell needs a workload")
        if self.kind == "multi_vm" and not self.assignments:
            raise ConfigurationError("multi_vm cell needs assignments")
        if self.kind == "specjbb" and self.warehouses < 1:
            raise ConfigurationError("specjbb cell needs warehouses >= 1")
        if self.on_deadline not in ("raise", "return"):
            raise ConfigurationError(
                "on_deadline must be 'raise' or 'return'")
        if self.collect_trace:
            if self.kind == "specjbb":
                raise ConfigurationError(
                    "specjbb cells do not support collect_trace")
            if not all(isinstance(c, str) and c for c in self.collect_trace):
                raise ConfigurationError(
                    "collect_trace must be non-empty category names")

    # -- canonical form ------------------------------------------------- #
    def canonical(self) -> str:
        """Deterministic JSON rendering of this spec.

        The canonical string is the batch merge key and the cache-key
        input: two specs describe the same simulation iff their canonical
        strings are equal.  The resolved :class:`SchedulerConfig` is
        embedded in full, so changing any timing parameter re-keys every
        affected cell.
        """
        doc = canonical_value(self)
        assert isinstance(doc, dict)
        doc["sched_config"] = canonical_value(self.resolved_sched_config())
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    def cache_key(self, salt: str) -> str:
        """SHA-256 over the canonical spec plus a code-version ``salt``."""
        digest = hashlib.sha256()
        digest.update(salt.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.canonical().encode("utf-8"))
        return digest.hexdigest()

    def resolved_sched_config(self) -> SchedulerConfig:
        """The SchedulerConfig this cell actually simulates under."""
        if self.sched_config is not None:
            return self.sched_config
        # Scenario defaults mirror the runner functions: single-VM and
        # SPECjbb scenarios are non-work-conserving (Section 5.2), the
        # multi-VM mixes are work-conserving (Section 5.3).
        return SchedulerConfig(work_conserving=(self.kind == "multi_vm"))


# --------------------------------------------------------------------- #
# Canonicalisation and fingerprints
# --------------------------------------------------------------------- #
def canonical_value(obj: object) -> object:
    """Recursively convert a value into JSON-stable plain data.

    Dataclasses become ``{"__kind__": <class name>, **fields}`` dicts,
    tuples become lists, dict keys are stringified (json sorts them).
    Floats serialise through ``repr`` via :mod:`json`, which round-trips
    exactly — canonical strings are bit-stable across runs and hosts.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        doc: Dict[str, object] = {"__kind__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            doc[f.name] = canonical_value(getattr(obj, f.name))
        return doc
    if isinstance(obj, dict):
        return {str(k): canonical_value(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_value(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ConfigurationError(
        f"cannot canonicalise {type(obj).__name__!r} value {obj!r}")


def from_canonical(text: str) -> "CellSpec":
    """Rebuild a :class:`CellSpec` from its :meth:`CellSpec.canonical` JSON.

    The inverse used by conformance ``--replay`` artifacts: a failing
    scenario is persisted as its canonical string and reconstructed here
    to re-run the exact simulation.  Because ``canonical()`` embeds the
    *resolved* SchedulerConfig, a spec whose ``sched_config`` was None
    round-trips to one carrying the resolved config explicitly — a
    canonically (and behaviourally) identical cell.

    Strict by design: unknown fields raise :class:`ConfigurationError`
    rather than being dropped, so artifacts recorded under a different
    code version fail loudly instead of replaying something else.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"invalid canonical spec JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("__kind__") != "CellSpec":
        raise ConfigurationError("document is not a canonical CellSpec")
    kw = {k: v for k, v in doc.items() if k != "__kind__"}
    if kw.get("workload") is not None:
        kw["workload"] = _rebuild_dataclass(kw["workload"], WorkloadSpec)
    kw["assignments"] = tuple(
        (name, _rebuild_dataclass(wdoc, WorkloadSpec), bool(conc))
        for name, wdoc, conc in (kw.get("assignments") or ()))
    if kw.get("faults") is not None:
        kw["faults"] = _rebuild_dataclass(kw["faults"], FaultSpec,
                                          tuple_fields=("degraded_pcpus",))
    if kw.get("sched_config") is not None:
        kw["sched_config"] = _rebuild_dataclass(kw["sched_config"],
                                                SchedulerConfig)
    kw["collect_trace"] = tuple(kw.get("collect_trace") or ())
    names = {f.name for f in dataclasses.fields(CellSpec)}
    unknown = sorted(set(kw) - names)
    if unknown:
        raise ConfigurationError(
            f"canonical CellSpec has unknown fields: {unknown}")
    return CellSpec(**kw)


def _rebuild_dataclass(doc: object, cls: type,
                       tuple_fields: Tuple[str, ...] = ()) -> object:
    """Reconstruct one frozen dataclass from its canonical dict form."""
    want = cls.__name__
    if not isinstance(doc, dict) or doc.get("__kind__") != want:
        raise ConfigurationError(f"expected a canonical {want} document")
    kw = {k: v for k, v in doc.items() if k != "__kind__"}
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(kw) - names)
    if unknown:
        raise ConfigurationError(
            f"canonical {want} has unknown fields: {unknown}")
    for f in tuple_fields:
        kw[f] = tuple(kw.get(f) or ())
    return cls(**kw)


def result_fingerprint(value: object) -> int:
    """64-bit digest of a cell result's canonical form.

    A serial run and an N-way parallel run of the same spec must produce
    the same fingerprint — this is the determinism gate the parallel
    tests and the ``parallel_scaling`` macro bench check.
    """
    text = json.dumps(canonical_value(value), sort_keys=True,
                      separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# --------------------------------------------------------------------- #
# Spec builders (ergonomic shorthands used by figures and the CLI)
# --------------------------------------------------------------------- #
def single_vm_cell(workload: WorkloadSpec, scheduler: str = "credit",
                   online_rate: float = 1.0, seed: int = 1,
                   collect_scatter: bool = False,
                   **kw) -> CellSpec:
    """A Section-5.2 cell: one monitored VM plus idle Domain-0."""
    return CellSpec(kind="single_vm", workload=workload,
                    scheduler=scheduler, online_rate=online_rate,
                    seed=seed, collect_scatter=collect_scatter, **kw)


def multi_vm_cell(assignments, scheduler: str = "credit", seed: int = 1,
                  measure_rounds: int = 2, **kw) -> CellSpec:
    """A Section-5.3 cell: several weight-256 VMs, work-conserving."""
    return CellSpec(kind="multi_vm", assignments=tuple(
        (name, wl, bool(concurrent)) for name, wl, concurrent in assignments),
        scheduler=scheduler, seed=seed, measure_rounds=measure_rounds, **kw)


def specjbb_cell(warehouses: int, scheduler: str = "credit",
                 online_rate: float = 1.0, seed: int = 1,
                 window_cycles: Optional[int] = None,
                 warmup_cycles: Optional[int] = None, **kw) -> CellSpec:
    """A Figure-10 cell: SPECjbb warehouses over a fixed window."""
    return CellSpec(kind="specjbb", warehouses=warehouses,
                    scheduler=scheduler, online_rate=online_rate, seed=seed,
                    window_cycles=window_cycles, warmup_cycles=warmup_cycles,
                    **kw)


# --------------------------------------------------------------------- #
# Execution (runs in pool workers — must stay module-level picklable)
# --------------------------------------------------------------------- #
def execute_cell(spec: CellSpec):
    """Run one cell and return its (picklable) result dataclass."""
    from repro.experiments import runner

    if spec.kind == "single_vm":
        assert spec.workload is not None  # guaranteed by __post_init__
        deadline = (spec.deadline_cycles if spec.deadline_cycles is not None
                    else runner.DEFAULT_DEADLINE)
        return runner.run_single_vm(
            spec.workload.build, scheduler=spec.scheduler,
            online_rate=spec.online_rate, seed=spec.seed,
            num_pcpus=spec.num_pcpus, num_vcpus=spec.num_vcpus,
            deadline_cycles=deadline, collect_scatter=spec.collect_scatter,
            sched_config=spec.sched_config, on_deadline=spec.on_deadline,
            faults=spec.faults, collect_timeline=spec.collect_timeline,
            collect_trace=spec.collect_trace)
    if spec.kind == "multi_vm":
        assignments = [(name, wl.build, concurrent)
                       for name, wl, concurrent in spec.assignments]
        deadline = (spec.deadline_cycles if spec.deadline_cycles is not None
                    else runner.DEFAULT_DEADLINE)
        return runner.run_multi_vm(
            assignments, scheduler=spec.scheduler, seed=spec.seed,
            num_pcpus=spec.num_pcpus, num_vcpus=spec.num_vcpus,
            measure_rounds=spec.measure_rounds, deadline_cycles=deadline,
            sched_config=spec.sched_config, on_deadline=spec.on_deadline,
            faults=spec.faults, collect_trace=spec.collect_trace)
    window = (spec.window_cycles if spec.window_cycles is not None
              else runner.DEFAULT_SPECJBB_WINDOW)
    warmup = (spec.warmup_cycles if spec.warmup_cycles is not None
              else runner.DEFAULT_SPECJBB_WARMUP)
    return runner.run_specjbb(
        spec.warehouses, scheduler=spec.scheduler,
        online_rate=spec.online_rate, window_cycles=window,
        warmup_cycles=warmup, seed=spec.seed,
        num_pcpus=spec.num_pcpus, num_vcpus=spec.num_vcpus,
        sched_config=spec.sched_config, faults=spec.faults)
