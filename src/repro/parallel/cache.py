"""Content-addressed on-disk result cache for simulation cells.

Every cell result is stored under a key that is a pure function of *what
was simulated*: the SHA-256 of the cell's canonical spec (scenario kind,
scheduler, rate, seed, workload, resolved :class:`SchedulerConfig`, …)
salted with the installed ``repro`` version.  Consequences:

* re-running an unchanged figure is a pure cache hit — no simulation;
* changing **one** parameter (a seed, a scale, a scheduler knob)
  re-keys only the affected cells, so a sweep re-simulates exactly the
  dirty part of its grid;
* upgrading ``repro`` invalidates everything at once — a deliberate,
  coarse guard against stale results from changed simulation code.

Entries live in ``.repro-cache/`` (override with ``REPRO_CACHE_DIR`` or
the ``--cache-dir`` CLI/pytest options), fanned out over two-hex-char
subdirectories.  Each entry is a pickle of the result dataclass plus a
small JSON sidecar with the originating spec — the sidecar makes cache
content reviewable (``python -m json.tool``) and is what the CI
artifact's stats summarise.  Writes go through a temp file + ``os.replace``
so concurrent writers can never expose a torn entry.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.parallel.cells import CellSpec

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache", "default_salt"]

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every cached result on a format change.
CACHE_SCHEMA = 3

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_salt() -> str:
    """Code-version salt mixed into every cache key."""
    return f"repro-{__version__}/schema-{CACHE_SCHEMA}"


class ResultCache:
    """Content-addressed store mapping cell specs to pickled results."""

    def __init__(self, root: Optional[object] = None,
                 salt: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(_CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.salt = salt if salt is not None else default_salt()
        #: Per-process traffic counters (reset with the process, not the
        #: directory) — what the CLI's one-line summary and the CI stats
        #: artifact report.
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys and paths ------------------------------------------------- #
    def key_for(self, spec: CellSpec) -> str:
        return spec.cache_key(self.salt)

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _sidecar_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- traffic -------------------------------------------------------- #
    def get(self, spec: CellSpec) -> Tuple[bool, object]:
        """Look a spec up.  Returns ``(hit, value)``; value is ``None``
        on a miss.  A corrupt or truncated entry reads as a miss."""
        path = self._entry_path(self.key_for(spec))
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            # OSError: not cached; the rest: stale/torn entry from an
            # older code revision — treat as absent, it will be rewritten.
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, spec: CellSpec, value: object) -> str:
        """Store a result; returns the entry key.  Atomic via rename."""
        key = self.key_for(spec)
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(entry, pickle.dumps(
            value, protocol=pickle.HIGHEST_PROTOCOL))
        sidecar = {"salt": self.salt, "spec": json.loads(spec.canonical()),
                   "result_type": type(value).__name__}
        self._write_atomic(self._sidecar_path(key),
                           (json.dumps(sidecar, sort_keys=True, indent=1)
                            + "\n").encode("utf-8"))
        self.stores += 1
        return key

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.name + ".")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    # -- maintenance ---------------------------------------------------- #
    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in sorted(self.root.rglob("*.pkl")):
            entry.unlink()
            sidecar = entry.with_suffix(".json")
            if sidecar.exists():
                sidecar.unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, object]:
        """On-disk + in-process statistics (the CI artifact payload)."""
        entries = 0
        size = 0
        if self.root.is_dir():
            for entry in self.root.rglob("*.pkl"):
                entries += 1
                size += entry.stat().st_size
        return {
            "root": str(self.root),
            "salt": self.salt,
            "entries": entries,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def write_stats(self, path: object) -> Path:
        """Dump :meth:`stats` as JSON (uploaded as a CI artifact)."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.stats(), sort_keys=True, indent=1)
                       + "\n")
        return out

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        s = self.stats()
        return (f"cache {s['root']}: {s['hits']} hit(s), "
                f"{s['misses']} miss(es), {s['stores']} store(s), "
                f"{s['entries']} entr{'y' if s['entries'] == 1 else 'ies'} "
                f"on disk")
