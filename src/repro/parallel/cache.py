"""Content-addressed on-disk result cache for simulation cells.

Every cell result is stored under a key that is a pure function of *what
was simulated*: the SHA-256 of the cell's canonical spec (scenario kind,
scheduler, rate, seed, workload, resolved :class:`SchedulerConfig`, …)
salted with the installed ``repro`` version.  Consequences:

* re-running an unchanged figure is a pure cache hit — no simulation;
* changing **one** parameter (a seed, a scale, a scheduler knob)
  re-keys only the affected cells, so a sweep re-simulates exactly the
  dirty part of its grid;
* upgrading ``repro`` invalidates everything at once — a deliberate,
  coarse guard against stale results from changed simulation code.

Entries live in ``.repro-cache/`` (override with ``REPRO_CACHE_DIR`` or
the ``--cache-dir`` CLI/pytest options), fanned out over two-hex-char
subdirectories.  Each entry is a pickle of the result dataclass plus a
small JSON sidecar with the originating spec — the sidecar makes cache
content reviewable (``python -m json.tool``) and is what the CI
artifact's stats summarise.  Writes go through a temp file + ``fsync`` +
``os.replace`` so concurrent writers can never expose a torn entry.

Integrity
---------
The sidecar records the SHA-256 of the pickled payload, and every read
re-hashes the payload against it.  An entry whose checksum (or sidecar)
is wrong — bit rot, a torn write from a killed process, tampering — is
**quarantined**: moved to ``<root>/quarantine/`` for post-mortem, counted
in :meth:`stats`, and served as a miss so the cell simply re-executes.
The sidecar is written *before* the payload, so a payload that exists
without a sidecar is itself evidence of corruption, never a benign race.
:meth:`verify` scans the whole store explicitly and can raise
:class:`~repro.errors.CacheIntegrityError` for CI gating.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.errors import CacheIntegrityError
from repro.parallel.cells import CellSpec

__all__ = ["DEFAULT_CACHE_DIR", "CacheIntegrityWarning", "ResultCache",
           "default_salt"]

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every cached result on a format change.
#: 4: integrity sidecars (sha256 checksum verified on every read).
CACHE_SCHEMA = 4

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class CacheIntegrityWarning(UserWarning):
    """A corrupt cache entry was found (and quarantined when possible)."""


def default_salt() -> str:
    """Code-version salt mixed into every cache key."""
    return f"repro-{__version__}/schema-{CACHE_SCHEMA}"


class ResultCache:
    """Content-addressed store mapping cell specs to pickled results."""

    def __init__(self, root: Optional[object] = None,
                 salt: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(_CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.salt = salt if salt is not None else default_salt()
        #: Per-process traffic counters (reset with the process, not the
        #: directory) — what the CLI's one-line summary and the CI stats
        #: artifact report.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt entries detected (and, when possible, moved aside).
        self.quarantined = 0

    # -- keys and paths ------------------------------------------------- #
    def key_for(self, spec: CellSpec) -> str:
        return spec.cache_key(self.salt)

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _sidecar_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- traffic -------------------------------------------------------- #
    def get(self, spec: CellSpec) -> Tuple[bool, object]:
        """Look a spec up.  Returns ``(hit, value)``; value is ``None``
        on a miss.  A corrupt, truncated or checksum-failing entry is
        quarantined and reads as a miss."""
        key = self.key_for(spec)
        try:
            payload = self._entry_path(key).read_bytes()
        except OSError:
            self.misses += 1
            return False, None
        if not self._checksum_ok(key, payload):
            self._quarantine(key, "payload checksum mismatch")
            self.misses += 1
            return False, None
        try:
            value: object = pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # Checksum matched but the pickle does not load: an entry
            # from an incompatible code revision that slipped past the
            # salt.  Quarantine it for post-mortem; it will be rewritten.
            self._quarantine(key, "payload unpickling failed")
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, spec: CellSpec, value: object) -> str:
        """Store a result; returns the entry key.  Atomic via rename.

        The sidecar (spec + payload checksum) lands *before* the payload
        so readers never see a payload they cannot verify.
        """
        key = self.key_for(spec)
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        sidecar = {"salt": self.salt, "spec": json.loads(spec.canonical()),
                   "result_type": type(value).__name__,
                   "sha256": hashlib.sha256(payload).hexdigest(),
                   "payload_bytes": len(payload)}
        self._write_atomic(self._sidecar_path(key),
                           (json.dumps(sidecar, sort_keys=True, indent=1)
                            + "\n").encode("utf-8"))
        self._write_atomic(entry, payload)
        self.stores += 1
        return key

    def _checksum_ok(self, key: str, payload: bytes) -> bool:
        """Does the sidecar's recorded SHA-256 match the payload?"""
        try:
            doc = json.loads(self._sidecar_path(key).read_text(
                encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return False
        if not isinstance(doc, dict):
            return False
        return doc.get("sha256") == hashlib.sha256(payload).hexdigest()

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a corrupt entry (payload + sidecar) aside for post-mortem.

        If the quarantine directory cannot be created or written
        (read-only media, a file squatting on the path), the entry is
        left in place and the read degrades to a plain miss — a loud
        warning either way, silent-corruption never.
        """
        self.quarantined += 1
        target = "left in place (quarantine dir unwritable)"
        with contextlib.suppress(OSError):
            qdir = self._quarantine_root()
            qdir.mkdir(parents=True, exist_ok=True)
            for path in (self._entry_path(key), self._sidecar_path(key)):
                if path.exists():
                    os.replace(path, qdir / path.name)
            target = f"moved to {qdir}"
        warnings.warn(
            f"corrupt cache entry {key[:16]}… ({reason}); {target}; "
            f"the cell will re-execute", CacheIntegrityWarning,
            stacklevel=3)

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.name + ".",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                # Durability before visibility: the rename must never
                # land a payload the kernel has not yet committed, or a
                # crash can expose a torn-but-renamed entry.
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            # Any failure — not just OSError: a write error, an
            # interrupt mid-write — must not leave the temp file behind.
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    # -- maintenance ---------------------------------------------------- #
    def clear(self) -> int:
        """Delete every entry (quarantined ones included) and sweep any
        stale ``*.tmp`` files left by writers that died mid-write;
        returns the number of entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in sorted(self.root.rglob("*.pkl")):
            entry.unlink()
            sidecar = entry.with_suffix(".json")
            if sidecar.exists():
                sidecar.unlink()
            removed += 1
        for stale in sorted(self.root.rglob("*.tmp")):
            with contextlib.suppress(OSError):
                stale.unlink()
        return removed

    def verify(self, strict: bool = False) -> Dict[str, object]:
        """Re-hash every entry against its sidecar checksum.

        Returns ``{"checked": n, "corrupt": [keys...]}`` without touching
        the store (no quarantining — this is the read-only audit).  With
        ``strict=True`` a non-empty corrupt list raises
        :class:`~repro.errors.CacheIntegrityError` instead (the CI
        gate's form).
        """
        checked = 0
        corrupt: List[str] = []
        qroot = self._quarantine_root()
        if self.root.is_dir():
            for entry in sorted(self.root.rglob("*.pkl")):
                if qroot in entry.parents:
                    continue  # already impounded
                checked += 1
                key = entry.stem
                try:
                    payload = entry.read_bytes()
                except OSError:
                    corrupt.append(key)
                    continue
                if not self._checksum_ok(key, payload):
                    corrupt.append(key)
        if strict and corrupt:
            raise CacheIntegrityError(
                f"{len(corrupt)} corrupt cache entr"
                f"{'y' if len(corrupt) == 1 else 'ies'} under {self.root}: "
                + ", ".join(k[:16] + "…" for k in corrupt[:5])
                + ("" if len(corrupt) <= 5 else ", …"))
        return {"checked": checked, "corrupt": corrupt}

    def stats(self) -> Dict[str, object]:
        """On-disk + in-process statistics (the CI artifact payload)."""
        entries = 0
        size = 0
        quarantine_entries = 0
        qroot = self._quarantine_root()
        if self.root.is_dir():
            for entry in self.root.rglob("*.pkl"):
                if qroot in entry.parents:
                    quarantine_entries += 1
                    continue
                entries += 1
                size += entry.stat().st_size
        return {
            "root": str(self.root),
            "salt": self.salt,
            "entries": entries,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "quarantine_entries": quarantine_entries,
        }

    def write_stats(self, path: object) -> Path:
        """Dump :meth:`stats` as JSON (uploaded as a CI artifact)."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.stats(), sort_keys=True, indent=1)
                       + "\n")
        return out

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        s = self.stats()
        text = (f"cache {s['root']}: {s['hits']} hit(s), "
                f"{s['misses']} miss(es), {s['stores']} store(s), "
                f"{s['entries']} entr{'y' if s['entries'] == 1 else 'ies'} "
                f"on disk")
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text
