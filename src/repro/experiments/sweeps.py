"""Parameter sweeps with repetition statistics.

The figure drivers report means; reviewers (and CI flakiness hunts) want
dispersion too.  :class:`Sweep` runs a cartesian grid of scenario
parameters over several seeds and aggregates mean / standard deviation /
a normal-approximation confidence half-width per cell.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.metrics.report import Table

#: A scenario function: (params, seed) -> measured value.
Scenario = Callable[[Mapping[str, object], int], float]


@dataclass(frozen=True)
class Cell:
    """One grid point's aggregated measurements."""

    params: Tuple[Tuple[str, object], ...]
    values: Tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values)
                         / (self.n - 1))

    def ci_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation confidence half-width for the mean."""
        if self.n < 2:
            return 0.0
        return z * self.std / math.sqrt(self.n)

    @property
    def cv(self) -> float:
        """Coefficient of variation — the paper requires < 10% before
        averaging multi-VM rounds (Section 5.3)."""
        m = self.mean
        return self.std / m if m else 0.0

    def param(self, key: str):
        return dict(self.params)[key]


@dataclass
class SweepResult:
    axes: Dict[str, Sequence[object]]
    seeds: Sequence[int]
    cells: List[Cell] = field(default_factory=list)

    def cell(self, **params) -> Cell:
        want = tuple(sorted(params.items()))
        for c in self.cells:
            if tuple(sorted(c.params)) == want:
                return c
        raise KeyError(f"no cell for {params!r}")

    def series(self, x_axis: str, **fixed) -> List[Tuple[object, float]]:
        """(x, mean) points along one axis with the others fixed."""
        out = []
        for x in self.axes[x_axis]:
            out.append((x, self.cell(**{x_axis: x}, **fixed).mean))
        return out

    def table(self, value_label: str = "value",
              precision: int = 3) -> Table:
        keys = list(self.axes)
        t = Table(keys + [f"{value_label}_mean", "std", "ci95", "n"],
                  precision=precision)
        for c in self.cells:
            p = dict(c.params)
            t.add_row(*[p[k] for k in keys], c.mean, c.std,
                      c.ci_halfwidth(), c.n)
        return t

    def max_cv(self) -> float:
        return max((c.cv for c in self.cells), default=0.0)


class Sweep:
    """Cartesian sweep runner."""

    def __init__(self, scenario: Scenario,
                 axes: Mapping[str, Sequence[object]],
                 seeds: Sequence[int] = (1, 2, 3)) -> None:
        if not axes:
            raise ConfigurationError("need at least one axis")
        if not seeds:
            raise ConfigurationError("need at least one seed")
        for name, values in axes.items():
            if not values:
                raise ConfigurationError(f"axis {name!r} is empty")
        self.scenario = scenario
        self.axes = {k: list(v) for k, v in axes.items()}
        self.seeds = list(seeds)

    def run(self, progress: Callable[[str], None] | None = None) -> SweepResult:
        result = SweepResult(axes=self.axes, seeds=self.seeds)
        keys = list(self.axes)
        for combo in itertools.product(*(self.axes[k] for k in keys)):
            params = dict(zip(keys, combo))
            values = []
            for seed in self.seeds:
                values.append(float(self.scenario(params, seed)))
            if progress is not None:
                progress(f"{params} -> {sum(values) / len(values):.4g}")
            result.cells.append(Cell(
                params=tuple(sorted(params.items())),
                values=tuple(values)))
        return result
