"""Parameter sweeps with repetition statistics.

The figure drivers report means; reviewers (and CI flakiness hunts) want
dispersion too.  :class:`Sweep` runs a cartesian grid of scenario
parameters over several seeds and aggregates mean / standard deviation /
a normal-approximation confidence half-width per cell.

Grid execution rides the parallel experiment fabric: ``Sweep.run(jobs=4)``
evaluates the (params, seed) points over a spawn-safe process pool via
:func:`repro.parallel.pool_map`.  The scenario callable and its returns
must pickle for ``jobs > 1`` — module-level functions qualify, closures
do not (they raise at submission time, not silently).  Point order, and
therefore cell/value order, is identical at any job count.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.errors import ConfigurationError
from repro.metrics.report import Table

#: A scenario function: (params, seed) -> measured value.
Scenario = Callable[[Mapping[str, object], int], float]


@dataclass(frozen=True, slots=True)
class Cell:
    """One grid point's aggregated measurements.

    ``mean`` and ``std`` are computed once at construction (the value
    tuple is immutable, so they can never go stale) and memoised in
    ``__slots__``-backed fields — ``std``, ``cv`` and ``ci_halfwidth``
    were previously recomputing the mean on every access, which showed
    up in wide-grid table rendering.  The dataclass stays frozen: the
    cached fields are ``init=False`` and written via
    ``object.__setattr__`` exactly once, in ``__post_init__``.
    """

    params: Tuple[Tuple[str, object], ...]
    values: Tuple[float, ...]
    _mean: float = field(init=False, repr=False, compare=False)
    _std: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = len(self.values)
        mean = sum(self.values) / n if n else 0.0
        if n < 2:
            std = 0.0
        else:
            std = math.sqrt(sum((v - mean) ** 2 for v in self.values)
                            / (n - 1))
        object.__setattr__(self, "_mean", mean)
        object.__setattr__(self, "_std", std)

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._std

    def ci_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation confidence half-width for the mean."""
        if self.n < 2:
            return 0.0
        return z * self._std / math.sqrt(self.n)

    @property
    def cv(self) -> float:
        """Coefficient of variation — the paper requires < 10% before
        averaging multi-VM rounds (Section 5.3)."""
        return self._std / self._mean if self._mean else 0.0

    def param(self, key: str):
        return dict(self.params)[key]


@dataclass
class SweepResult:
    axes: Dict[str, Sequence[object]]
    seeds: Sequence[int]
    cells: List[Cell] = field(default_factory=list)

    def cell(self, **params) -> Cell:
        want = tuple(sorted(params.items()))
        for c in self.cells:
            if tuple(sorted(c.params)) == want:
                return c
        raise KeyError(f"no cell for {params!r}")

    def series(self, x_axis: str, **fixed) -> List[Tuple[object, float]]:
        """(x, mean) points along one axis with the others fixed."""
        out = []
        for x in self.axes[x_axis]:
            out.append((x, self.cell(**{x_axis: x}, **fixed).mean))
        return out

    def table(self, value_label: str = "value",
              precision: int = 3) -> Table:
        keys = list(self.axes)
        t = Table(keys + [f"{value_label}_mean", "std", "ci95", "n"],
                  precision=precision)
        for c in self.cells:
            p = dict(c.params)
            t.add_row(*[p[k] for k in keys], c.mean, c.std,
                      c.ci_halfwidth(), c.n)
        return t

    def max_cv(self) -> float:
        return max((c.cv for c in self.cells), default=0.0)


def _eval_point(task: Tuple[Scenario, Dict[str, object], int]) -> float:
    """Evaluate one (scenario, params, seed) point.

    Module-level so it pickles into process-pool workers; the scenario
    callable rides along inside the task tuple.
    """
    scenario, params, seed = task
    return float(scenario(params, seed))


class Sweep:
    """Cartesian sweep runner."""

    def __init__(self, scenario: Scenario,
                 axes: Mapping[str, Sequence[object]],
                 seeds: Sequence[int] = (1, 2, 3)) -> None:
        if not axes:
            raise ConfigurationError("need at least one axis")
        if not seeds:
            raise ConfigurationError("need at least one seed")
        for name, values in axes.items():
            if not values:
                raise ConfigurationError(f"axis {name!r} is empty")
        self.scenario = scenario
        self.axes = {k: list(v) for k, v in axes.items()}
        self.seeds = list(seeds)

    def run(self, progress: Optional[Callable[[str], None]] = None,
            jobs: Optional[Union[int, str]] = None) -> SweepResult:
        """Run the grid; ``jobs > 1`` fans points over a process pool.

        Each (params, seed) point is one task, so a grid of G cells and
        S seeds exposes G*S-way parallelism.  Values are re-grouped per
        cell in grid order — results are identical at any job count.
        """
        from repro.parallel.executor import pool_map

        result = SweepResult(axes=self.axes, seeds=self.seeds)
        keys = list(self.axes)
        grid: List[Dict[str, object]] = [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.axes[k] for k in keys))]
        tasks = [(self.scenario, params, seed)
                 for params in grid for seed in self.seeds]
        flat = pool_map(_eval_point, tasks, jobs=jobs)
        per_cell = len(self.seeds)
        for i, params in enumerate(grid):
            values = flat[i * per_cell:(i + 1) * per_cell]
            if progress is not None:
                progress(f"{params} -> {sum(values) / len(values):.4g}")
            result.cells.append(Cell(
                params=tuple(sorted(params.items())),
                values=tuple(values)))
        return result
