"""Testbed construction: the simulated Dell T5400 running Xen.

:class:`Testbed` wires together simulator, trace bus, machine, one of the
three schedulers, the hypercall table and per-VM guests/monitors, exactly
mirroring the paper's setup (Section 5.1): 8 PCPUs, an idle 8-VCPU
Domain-0 with weight 256, guest VMs with 4 VCPUs each.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from repro.analysis import sanitize_enabled
from repro.analysis.sanitizer import SchedulerSanitizer
from repro.asman.inference import ExternalVcrdMonitor, InferenceConfig
from repro.asman.monitor import MonitoringModule
from repro.config import (GuestConfig, MachineConfig, MonitorConfig,
                          SchedulerConfig, VMConfig)
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultSpec
from repro.guest.kernel import GuestKernel
from repro.hardware.machine import Machine
from repro.metrics.runtime import RuntimeCollector
from repro.metrics.spinlock_stats import SpinlockStats
from repro.sim.engine import Simulator
from repro.sim.fastforward import fastforward_enabled
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus
from repro.vmm.adaptive import AdaptiveScheduler
from repro.vmm.coschedule import StaticCoscheduler
from repro.vmm.credit import CreditScheduler
from repro.vmm.relaxed import RelaxedCoscheduler
from repro.vmm.hypercall import HypercallTable
from repro.vmm.scheduler_base import SchedulerBase
from repro.vmm.vm import VM
from repro.workloads.base import Workload

_SCHEDULERS: Dict[str, Type[SchedulerBase]] = {
    "credit": CreditScheduler,
    "asman": AdaptiveScheduler,
    "con": StaticCoscheduler,
    "relaxed": RelaxedCoscheduler,
}


def make_scheduler(name: str) -> Type[SchedulerBase]:
    """Resolve a scheduler class by its paper label."""
    cls = _SCHEDULERS.get(name.lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; choose from {sorted(_SCHEDULERS)}")
    return cls


def register_scheduler(name: str, cls: Type[SchedulerBase]) -> None:
    """Register an extra scheduler class under ``name``.

    Extension hook used by :mod:`repro.conformance`'s deliberately broken
    test-only mutants.  Registering the same class twice is a no-op;
    rebinding an existing name to a *different* class raises, so the
    built-in schedulers cannot be silently replaced.  Registrations are
    process-local: parallel-fabric workers (spawned fresh) do not see
    them, so cells naming a registered scheduler must run with
    ``jobs=1``.
    """
    key = name.lower()
    existing = _SCHEDULERS.get(key)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"scheduler {name!r} is already registered as "
            f"{existing.__name__}")
    _SCHEDULERS[key] = cls


def weight_for_rate(rate: float, num_pcpus: int = 8, num_vcpus: int = 4,
                    dom0_weight: int = 256) -> int:
    """Invert Equations (1)+(2): the guest weight giving the requested
    VCPU online rate when sharing the machine with an idle Domain-0.

    The paper's settings fall out exactly: rates 100/66.7/40/22.2% on
    8 PCPUs / 4 VCPUs give weights 256/128/64/32.
    """
    if not 0 < rate <= 1.0:
        raise ConfigurationError("rate must be in (0, 1]")
    q = rate * num_vcpus / num_pcpus  # desired weight proportion
    if q >= 1.0:
        raise ConfigurationError(
            f"rate {rate} is unreachable with {num_vcpus} VCPUs "
            f"on {num_pcpus} PCPUs against Domain-0")
    w = dom0_weight * q / (1.0 - q)
    return max(1, int(round(w)))


class Testbed:
    """A complete simulated system under one scheduler."""

    def __init__(self, scheduler: str = "credit", num_pcpus: int = 8,
                 seed: int = 1,
                 sched_config: Optional[SchedulerConfig] = None,
                 machine_config: Optional[MachineConfig] = None,
                 sanitize: Optional[bool] = None,
                 faults: Optional[FaultSpec] = None) -> None:
        self.sim = Simulator()
        self.trace = TraceBus()
        self.rng = RngStreams(seed)
        mcfg = machine_config or MachineConfig(num_pcpus=num_pcpus)
        self.machine = Machine(mcfg, self.sim)
        self.scheduler: SchedulerBase = make_scheduler(scheduler)(
            self.machine, self.sim, self.trace, sched_config)
        #: Runtime invariant checker (``sanitize=True``, the ``--sanitize``
        #: CLI flag or ``REPRO_SANITIZE=1``); None in the default path.
        self.sanitizer: Optional[SchedulerSanitizer] = None
        if sanitize is None:
            sanitize = sanitize_enabled()
        if sanitize:
            self.sanitizer = SchedulerSanitizer(self.scheduler)
            self.scheduler.sanitizer = self.sanitizer
        self.hypercalls = HypercallTable(self.sim, self.trace)
        #: Fault-injection engine (repro.faults); None when ``faults`` is
        #: None or a no-op spec, in which case nothing is hooked and the
        #: simulation is bit-identical to a faults-free build.
        self.faults: Optional[FaultInjector] = None
        if faults is not None and not faults.is_noop():
            self.faults = FaultInjector(faults, self.sim, self.trace,
                                        self.rng)
            self.faults.apply_machine(self.machine)
            self.scheduler.ipi.faults = self.faults
            self.hypercalls.faults = self.faults
        self.vms: Dict[str, VM] = {}
        self.guests: Dict[str, GuestKernel] = {}
        self.monitors: Dict[str, MonitoringModule] = {}
        self.external_monitors: Dict[str, ExternalVcrdMonitor] = {}
        self.workloads: Dict[str, Workload] = {}
        # Collectors every experiment wants.
        self.runtimes = RuntimeCollector(self.trace)
        self._spin_stats: Dict[str, SpinlockStats] = {}
        self._vm_counter = 0
        self._started = False
        #: Quiescence fast-forward, sampled at construction like the
        #: kernels/schedulers do; selects the push-driven completion
        #: driver in :meth:`run_until_workloads_done`.
        self._ff = fastforward_enabled()
        #: Generation token retiring stale completion callbacks: each
        #: drive call bumps it, so a callback registered by an earlier
        #: call (possibly for a different VM subset) can never stop a
        #: later run.
        self._drive_gen = 0

    # ------------------------------------------------------------------ #
    @property
    def scheduler_name(self) -> str:
        return self.scheduler.name

    def add_domain0(self, num_vcpus: Optional[int] = None,
                    weight: int = 256) -> VM:
        """The administrator VM: paper config is 8 VCPUs, weight 256,
        1024 MB, no workload (Section 5.2)."""
        return self.add_vm("Domain-0",
                           num_vcpus=num_vcpus or len(self.machine),
                           weight=weight)

    def add_vm(self, name: str, num_vcpus: int = 4, weight: int = 256,
               workload: Optional[Workload] = None,
               monitored=None,
               concurrent_hint: bool = False,
               guest_config: Optional[GuestConfig] = None,
               monitor_config: Optional[MonitorConfig] = None,
               inference_config: Optional[InferenceConfig] = None) -> VM:
        """Create and register a VM; attach a guest kernel and workload.

        ``monitored`` selects the VCRD detector:

        * ``None`` — the in-guest Monitoring Module, but only under ASMan
          (the paper's prototype modifies the guest kernel only there);
        * ``True`` / ``"guest"`` — the in-guest Monitoring Module;
        * ``"external"`` — the out-of-VM inference monitor (the paper's
          future-work variant; no guest modification);
        * ``False`` — no detector.

        ``concurrent_hint`` is the CON scheduler's manual VM-type setting.

        VMs may be added after :meth:`start` (hot-plug): they join
        scheduling immediately and earn credit from the next accounting.
        """
        if name in self.vms:
            raise ConfigurationError(f"duplicate VM name {name!r}")
        if monitored not in (None, True, False, "guest", "external"):
            raise ConfigurationError(
                f"monitored must be None/True/False/'guest'/'external', "
                f"got {monitored!r}")
        cfg = VMConfig(name=name, num_vcpus=num_vcpus, weight=weight,
                       monitored=bool(monitored),
                       guest=guest_config or GuestConfig(),
                       monitor=monitor_config or MonitorConfig())
        vm = VM(self._vm_counter, cfg, self.sim, self.trace)
        self._vm_counter += 1
        vm.concurrent_hint = concurrent_hint
        self.scheduler.add_vm(vm)
        self.vms[name] = vm

        if workload is not None:
            kernel = GuestKernel(vm, self.sim, self.trace, cfg.guest)
            self.guests[name] = kernel
            if self.sanitizer is not None:
                kernel.sanitizer = self.sanitizer
            if monitored is None:
                monitored = self.scheduler_name == "asman"
            if monitored in (True, "guest"):
                mon_rng = self.rng.get(f"monitor/{name}")
                monitor = MonitoringModule(
                    kernel, self.hypercalls, cfg.monitor, mon_rng,
                    faults=self.faults)
                self.monitors[name] = monitor
                if self.faults is not None:
                    self.faults.attach_monitor(monitor)
            elif monitored == "external":
                self.external_monitors[name] = ExternalVcrdMonitor(
                    vm, self.sim, inference_config)
            workload.install(kernel, self.rng.get(f"workload/{name}"))
            self.workloads[name] = workload
            self._spin_stats[name] = SpinlockStats(self.trace, name)
        return vm

    def remove_vm(self, name: str) -> VM:
        """Destroy a VM at runtime (the consolidation-churn scenario).

        Its statistics stay readable through the returned object and the
        testbed's ``guests``/``workloads`` maps.
        """
        vm = self.vms.pop(name, None)
        if vm is None:
            raise ConfigurationError(f"no VM named {name!r}")
        ext = self.external_monitors.pop(name, None)
        if ext is not None:
            ext.stop()
        self.scheduler.remove_vm(vm)
        return vm

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.scheduler.start()

    def run_for(self, cycles: int) -> None:
        """Simulate a fixed window."""
        self.start()
        self.sim.run_until(self.sim.now + cycles)

    def run_until_workloads_done(self, vm_names: Optional[List[str]] = None,
                                 deadline_cycles: Optional[int] = None) -> bool:
        """Run until the named VMs' workloads all finish.  Returns True on
        completion, False if the deadline struck first."""
        self.start()
        names = vm_names if vm_names is not None else list(self.workloads)
        guests = [self.guests[n] for n in names]
        if self._ff:
            # Push-driven completion: each pending guest reports once
            # via on_all_done and the last one stops the loop — same
            # stop event, timestamp and event count as the predicate
            # poll below (the callback fires inside the finishing
            # event; stop() only flags the loop), without a per-event
            # predicate call.
            pending = [g for g in guests if not g.finished]
            if not pending:
                return True
            self._drive_gen += 1
            gen = self._drive_gen
            remaining = [len(pending)]

            def one_done() -> None:
                if gen != self._drive_gen:
                    return  # registered by a superseded drive call
                remaining[0] -= 1
                if remaining[0] == 0:
                    self.sim.stop()

            for g in pending:
                g.on_all_done(one_done)
            stopped = self.sim.run_until_stopped(deadline=deadline_cycles)
            self._drive_gen += 1  # retire this call's callbacks
            if stopped:
                return True
            return all(g.finished for g in guests)
        if len(guests) == 1:
            # The predicate runs once per simulated event; skip the
            # generator machinery for the common single-VM experiments.
            guest = guests[0]
            predicate = lambda: guest.finished  # noqa: E731
        else:
            predicate = lambda: all(g.finished for g in guests)  # noqa: E731
        done = self.sim.run_until_true(predicate, deadline=deadline_cycles)
        return done

    # ------------------------------------------------------------------ #
    def spin_stats(self, vm_name: str) -> SpinlockStats:
        stats = self._spin_stats.get(vm_name)
        if stats is None:
            raise ConfigurationError(f"no workload VM named {vm_name!r}")
        return stats

    def measured_online_rate(self, vm_name: str) -> float:
        vm = self.vms[vm_name]
        rates = [v.online_rate() for v in vm.vcpus]
        return sum(rates) / len(rates)
