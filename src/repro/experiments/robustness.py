"""Robustness experiment: the schedulers under injected faults.

The paper evaluates ASMan on a healthy testbed; this driver measures how
gracefully the adaptive loop degrades when its sensing and actuation
channels rot (see :mod:`repro.faults` and ``docs/robustness.md``).  For
every (fault class, scheduler) pair it reports

* **slowdown** — workload runtime relative to the *same scheduler's*
  faults-off baseline (so a fault class is charged only for its own
  damage, not for scheduler-to-scheduler differences);
* **co-online fraction** — of the time at least one of V1's VCPUs was
  online, how much had all of them online (the gang-quality metric);
* **fairness** — Jain's index over a two-VM mix under the same fault
  class (optional: the multi-VM cells dominate the batch's cost);
* **injected** — how many faults actually fired, so a vacuously clean
  row is visible as such.

The qualitative expectations, asserted by ``tests/test_faults.py``:
misreporting that pins VCRD LOW turns ASMan *exactly* into plain Credit
(no reports ever arrive, so the adaptive layer never acts); stuck-HIGH
turns it into static coscheduling-like behaviour; hypercall loss lands in
between; degraded PCPUs slow every scheduler but break none of the
credit invariants (run with ``--sanitize`` to enforce them).

Like the figure drivers, the experiment declares its full cell grid and
hands it to the parallel fabric; results are bit-identical at any job
count and cache under the composed (cell, fault) key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro import units
from repro.errors import ConfigurationError
from repro.experiments.runner import (MultiVmResult, SingleVmResult,
                                      run_cells)
from repro.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - break the repro.parallel cycle
    from repro.parallel.cache import ResultCache
    from repro.parallel.cells import CellSpec

__all__ = ["FAULT_CLASSES", "QUICK_CLASSES", "RobustnessResult",
           "RobustnessRow", "robustness_report"]

Jobs = Optional[Union[int, str]]

#: The fault matrix: one representative spec per failure mode.  Rates
#: and magnitudes are deliberately harsh — the point is to bracket the
#: degradation, not to model a realistic error rate.
FAULT_CLASSES: Dict[str, FaultSpec] = {
    "none": FaultSpec(),
    "hypercall_loss": FaultSpec(hypercall_loss=0.5),
    "hypercall_delay": FaultSpec(hypercall_delay=1.0,
                                 hypercall_delay_cycles=units.ms(1)),
    "hypercall_dup": FaultSpec(hypercall_duplication=0.5),
    "ipi_drop": FaultSpec(ipi_drop=0.5),
    "ipi_jitter": FaultSpec(ipi_jitter_cycles=units.us(100)),
    "monitor_stuck_low": FaultSpec(monitor_mode="stuck_low"),
    "monitor_stuck_high": FaultSpec(monitor_mode="stuck_high"),
    "monitor_flip": FaultSpec(monitor_flip_period=units.ms(10)),
    "monitor_delay": FaultSpec(monitor_delay_cycles=units.ms(5)),
    "degraded_pcpu": FaultSpec(degraded_pcpus=(0, 1),
                               degraded_speed=0.5),
}

#: The smoke subset (`--quick` / CI): one class per fault site.
QUICK_CLASSES: Tuple[str, ...] = (
    "none", "hypercall_loss", "ipi_drop", "monitor_stuck_low",
    "degraded_pcpu",
)

#: Schedulers compared, in report order.
DEFAULT_SCHEDULERS: Tuple[str, ...] = ("credit", "con", "asman")


@dataclass
class RobustnessRow:
    """One (fault class, scheduler) point of the matrix."""

    fault_class: str
    scheduler: str
    runtime_seconds: float
    #: Runtime relative to the same scheduler's faults-off runtime.
    slowdown: float
    co_online: float
    fairness: Optional[float] = None
    finished: bool = True
    #: Total injections that actually fired across the row's runs.
    injected: int = 0


@dataclass
class RobustnessResult:
    """The full matrix plus the batch's determinism fingerprint."""

    description: str
    rows: List[RobustnessRow] = field(default_factory=list)
    fingerprint: Optional[str] = None

    def row(self, fault_class: str, scheduler: str) -> RobustnessRow:
        for r in self.rows:
            if r.fault_class == fault_class and r.scheduler == scheduler:
                return r
        raise ConfigurationError(
            f"no robustness row ({fault_class!r}, {scheduler!r})")

    def render(self) -> str:
        header = (f"{'fault class':<20} {'scheduler':<9} {'runtime_s':>9} "
                  f"{'slowdown':>8} {'co-online':>9} {'fairness':>8} "
                  f"{'injected':>8}")
        parts = [f"=== robustness: {self.description}", header,
                 "-" * len(header)]
        for r in self.rows:
            fairness = f"{r.fairness:8.3f}" if r.fairness is not None \
                else f"{'-':>8}"
            flag = "" if r.finished else "  (DEADLINE)"
            parts.append(
                f"{r.fault_class:<20} {r.scheduler:<9} "
                f"{r.runtime_seconds:9.2f} {r.slowdown:8.3f} "
                f"{r.co_online:9.3f} {fairness} {r.injected:8d}{flag}")
        if self.fingerprint is not None:
            parts.append(f"fingerprint: {self.fingerprint}")
        return "\n".join(parts)


# --------------------------------------------------------------------- #
def _resolve_classes(classes: Optional[Sequence[str]]) -> List[str]:
    if classes is None:
        return list(FAULT_CLASSES)
    out = []
    for name in classes:
        if name not in FAULT_CLASSES:
            raise ConfigurationError(
                f"unknown fault class {name!r}; "
                f"choose from {sorted(FAULT_CLASSES)}")
        out.append(name)
    if "none" not in out:
        out.insert(0, "none")  # the baseline row is not optional
    return out


def _cell_faults(spec: FaultSpec, seed: int) -> Optional[FaultSpec]:
    """The FaultSpec a cell carries: None for the pristine baseline,
    otherwise the class spec re-seeded per repetition so fault schedules
    decorrelate across seeds exactly like workload draws do."""
    if spec.is_noop():
        return None
    return replace(spec, seed=seed)


def robustness_report(workload: str = "LU", scale: float = 0.6,
                      rate: float = 2.0 / 9.0,
                      seeds: Sequence[int] = (1,),
                      schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
                      classes: Optional[Sequence[str]] = None,
                      fairness: bool = True,
                      fairness_scale: Optional[float] = None,
                      jobs: Jobs = None,
                      cache: Optional["ResultCache"] = None
                      ) -> RobustnessResult:
    """Run the fault matrix and aggregate the degradation report.

    ``rate`` defaults to the paper's 22.2% online rate — the regime where
    lock-holder preemption is harshest and the adaptive loop earns its
    keep, hence where sensor faults hurt the most.
    """
    from repro.parallel.cells import (WorkloadSpec, multi_vm_cell,
                                      single_vm_cell)

    class_names = _resolve_classes(classes)
    wl = WorkloadSpec("nas", workload, scale=scale)
    single_grid: Dict[Tuple[str, str], List["CellSpec"]] = {}
    multi_grid: Dict[Tuple[str, str], List["CellSpec"]] = {}
    fscale = fairness_scale if fairness_scale is not None else scale / 2.0
    for cname in class_names:
        fspec = FAULT_CLASSES[cname]
        for sched in schedulers:
            single_grid[(cname, sched)] = [
                single_vm_cell(wl, sched, online_rate=rate, seed=seed,
                               faults=_cell_faults(fspec, seed),
                               collect_timeline=True, on_deadline="return")
                for seed in seeds]
            if fairness:
                fwl = WorkloadSpec("nas", workload, scale=fscale, rounds=2)
                multi_grid[(cname, sched)] = [
                    multi_vm_cell([("V1", fwl, True), ("V2", fwl, True)],
                                  sched, seed=seed, measure_rounds=1,
                                  faults=_cell_faults(fspec, seed),
                                  on_deadline="return")
                    for seed in seeds]
    batch = [c for cells in single_grid.values() for c in cells]
    batch += [c for cells in multi_grid.values() for c in cells]
    results = run_cells(batch, jobs=jobs, cache=cache)
    # The matrix aggregates every cell; supervision failures (timeouts,
    # exhausted retries) must abort with a structured error rather than
    # average CellFailure placeholders into the degradation numbers.
    results.raise_if_failed()

    report = RobustnessResult(
        description=f"{workload} scale={scale} rate={rate:.3f} "
                    f"seeds={tuple(seeds)}")
    baselines: Dict[str, float] = {}
    for cname in class_names:
        for sched in schedulers:
            singles = [results.value(c) for c in single_grid[(cname, sched)]]
            assert all(isinstance(r, SingleVmResult) for r in singles)
            runtime = sum(r.runtime_seconds for r in singles) / len(singles)
            co = sum(r.co_online_fraction or 0.0
                     for r in singles) / len(singles)
            injected = sum(sum((r.fault_stats or {}).values())
                           for r in singles)
            finished = all(r.finished for r in singles)
            fair: Optional[float] = None
            if fairness:
                multis = [results.value(c)
                          for c in multi_grid[(cname, sched)]]
                assert all(isinstance(r, MultiVmResult) for r in multis)
                fair = sum(r.fairness_jains for r in multis) / len(multis)
                injected += sum(sum((r.fault_stats or {}).values())
                                for r in multis)
                finished = finished and all(r.finished for r in multis)
            if cname == "none":
                baselines[sched] = runtime
            base = baselines.get(sched, runtime)
            report.rows.append(RobustnessRow(
                fault_class=cname, scheduler=sched,
                runtime_seconds=runtime,
                slowdown=runtime / base if base > 0 else float("inf"),
                co_online=co, fairness=fair, finished=finished,
                injected=injected))
    report.fingerprint = results.combined_fingerprint()
    return report
