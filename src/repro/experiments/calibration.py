"""Calibration utilities: validate the testbed against its spec.

Before trusting experiment output, downstream users (and our CI) want
evidence that the simulated testbed enforces what the paper's equations
promise: weight-proportional CPU shares (Equation 1), the derived VCPU
online rates (Equation 2), base-runtime comparability across benchmarks,
and determinism.  :func:`calibrate` runs those probes and returns a
:class:`CalibrationReport`; ``report.ok`` gates on configurable
tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.config import SchedulerConfig
from repro.experiments.runner import run_single_vm
from repro.experiments.setup import Testbed, weight_for_rate
from repro.metrics.report import Table
from repro.workloads.nas import NasBenchmark
from repro.workloads.speccpu import SpecCpuRateWorkload


@dataclass
class Probe:
    """One calibration check."""

    name: str
    expected: float
    measured: float
    tolerance: float

    @property
    def ok(self) -> bool:
        if self.expected == 0:
            return abs(self.measured) <= self.tolerance
        return abs(self.measured - self.expected) / abs(self.expected) \
            <= self.tolerance


@dataclass
class CalibrationReport:
    probes: List[Probe] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.probes)

    def failures(self) -> List[Probe]:
        return [p for p in self.probes if not p.ok]

    def render(self) -> str:
        table = Table(["probe", "expected", "measured", "tol", "ok"],
                      title="testbed calibration")
        for p in self.probes:
            table.add_row(p.name, p.expected, p.measured, p.tolerance,
                          "yes" if p.ok else "NO")
        return table.render()


def probe_online_rates(report: CalibrationReport,
                       rates: Sequence[float] = (2 / 3, 0.4, 2 / 9),
                       tolerance: float = 0.12,
                       scale: float = 0.3, seed: int = 1) -> None:
    """Equation (2): a CPU-bound guest's measured online rate matches the
    weight-derived entitlement in non-work-conserving mode."""
    for rate in rates:
        r = run_single_vm(
            lambda: SpecCpuRateWorkload.by_name("256.bzip2", scale=scale),
            scheduler="credit", online_rate=rate, seed=seed)
        report.probes.append(Probe(
            name=f"online_rate@{rate:.3f}",
            expected=rate, measured=r.measured_online_rate,
            tolerance=tolerance))


def probe_weight_shares(report: CalibrationReport,
                        tolerance: float = 0.15,
                        seed: int = 1) -> None:
    """Equation (1): CPU time splits by weight under saturation (2:1).

    Weights only bind under contention: 8 VCPUs must compete for 4 PCPUs
    here, otherwise every VCPU gets a free PCPU and the ratio is 1.
    """
    tb = Testbed(scheduler="credit", num_pcpus=4, seed=seed,
                 sched_config=SchedulerConfig(work_conserving=True))
    tb.add_vm("heavy", num_vcpus=4, weight=512,
              workload=SpecCpuRateWorkload.by_name("256.bzip2", scale=2.0))
    tb.add_vm("light", num_vcpus=4, weight=256,
              workload=SpecCpuRateWorkload.by_name("256.bzip2", scale=2.0))
    tb.run_for(units.seconds(2))
    heavy = tb.vms["heavy"].cpu_time()
    light = tb.vms["light"].cpu_time()
    report.probes.append(Probe(
        name="weight_share_ratio_2:1",
        expected=2.0, measured=heavy / light if light else float("inf"),
        tolerance=tolerance))


def probe_base_runtimes(report: CalibrationReport,
                        tolerance: float = 0.45,
                        scale: float = 0.3, seed: int = 1) -> None:
    """NAS profiles target comparable base runtimes (DESIGN.md): each
    benchmark's Credit@100% runtime is within tolerance of the mean."""
    times: Dict[str, float] = {}
    for name in ("LU", "EP", "CG"):
        r = run_single_vm(lambda n=name: NasBenchmark.by_name(n, scale=scale),
                          scheduler="credit", online_rate=1.0, seed=seed)
        times[name] = r.runtime_seconds
    mean = sum(times.values()) / len(times)
    for name, t in times.items():
        report.probes.append(Probe(
            name=f"base_runtime_{name}", expected=mean, measured=t,
            tolerance=tolerance))


def probe_determinism(report: CalibrationReport, seed: int = 7,
                      scale: float = 0.15) -> None:
    """Identical seeds give identical cycle-exact completion times."""
    def once() -> int:
        r = run_single_vm(lambda: NasBenchmark.by_name("LU", scale=scale),
                          scheduler="asman", online_rate=0.4, seed=seed)
        return r.runtime_cycles
    a, b = once(), once()
    report.probes.append(Probe(
        name="determinism", expected=0.0, measured=float(a - b),
        tolerance=0.0))


def calibrate(full: bool = True, seed: int = 1) -> CalibrationReport:
    """Run the calibration suite.  ``full=False`` skips the slower
    probes (weight shares, base runtimes)."""
    report = CalibrationReport()
    probe_online_rates(report, seed=seed)
    probe_determinism(report)
    if full:
        probe_weight_shares(report, seed=seed)
        probe_base_runtimes(report, seed=seed)
    return report
