"""Per-figure experiment drivers.

Every figure in the paper's evaluation (Figs 1-2, 7-12) has a ``fig*``
function here that runs the corresponding experiment and returns a
:class:`FigureResult` whose series mirror what the paper plots.  The
``benchmarks/`` tree wraps these in pytest-benchmark entries and prints
the series; EXPERIMENTS.md records the measured shapes against the
paper's.

Execution model: each driver first *declares* its full set of scenario
cells (:class:`~repro.parallel.cells.CellSpec` — one per scheduler ×
rate × seed × workload point), hands the whole batch to
:func:`~repro.parallel.run_cells`, then aggregates.  Cells are
independent simulations, so the batch fans out over ``jobs`` worker
processes and unchanged cells come back from the content-addressed
result cache; aggregation iterates the driver's own spec list, so the
produced series are bit-identical at any job count.  ``jobs=None`` and
``cache=None`` defer to the fabric defaults (CLI ``--jobs``/``--no-cache``,
``REPRO_JOBS``, or the pytest plugin).

Scale note: ``scale`` shrinks benchmark iteration counts (default runs a
few simulated seconds instead of the paper's hundreds) and ``seeds``
averages repetitions.  Slowdowns, ratios and distribution shapes are the
reproduction targets, not absolute seconds (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import units
from repro.experiments.runner import (PAPER_RATES, SingleVmResult,
                                      SpecJbbResult, run_cells)
from repro.metrics.report import format_series
from repro.metrics.runtime import ideal_slowdown
from repro.metrics.throughput import bops_score
from repro.parallel.cache import ResultCache
from repro.parallel.cells import (CellSpec, WorkloadSpec, multi_vm_cell,
                                  single_vm_cell, specjbb_cell)
from repro.parallel.executor import CellResults
from repro.workloads.nas import NAS_PROFILES

#: Percent labels for the paper's four online rates.
RATE_LABELS = {1.0: "100", 2.0 / 3.0: "66.7", 0.4: "40", 2.0 / 9.0: "22.2"}

#: Type alias for the jobs knob threaded through every driver.
Jobs = Optional[Union[int, str]]


@dataclass
class FigureResult:
    """One reproduced figure: named series of (x, y) points.

    ``fingerprint`` digests the underlying cell results (sorted by cell
    key); a serial and an N-way parallel regeneration of the same figure
    must render the same value — it is the user-visible determinism
    token of the parallel fabric.
    """

    figure: str
    description: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: Dict[str, float] = field(default_factory=dict)
    fingerprint: Optional[str] = None

    def render(self) -> str:
        parts = [f"=== {self.figure}: {self.description}"]
        for name, points in self.series.items():
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            parts.append(format_series(name, xs, ys))
        if self.notes:
            parts.append("notes: " + ", ".join(
                f"{k}={v:.3f}" for k, v in self.notes.items()))
        if self.fingerprint is not None:
            parts.append(f"fingerprint: {self.fingerprint}")
        return "\n".join(parts)


# --------------------------------------------------------------------- #
# Cell vocabulary shared by the drivers
# --------------------------------------------------------------------- #
def _nas(name: str, scale: float, rounds: int = 1) -> WorkloadSpec:
    return WorkloadSpec("nas", name, scale=scale, rounds=rounds)


def _single(results: CellResults, spec: CellSpec) -> SingleVmResult:
    value = results.value(spec)
    assert isinstance(value, SingleVmResult)
    return value


def _mean_runtime(results: CellResults,
                  specs: Sequence[CellSpec]) -> float:
    total = 0.0
    for spec in specs:
        total += _single(results, spec).runtime_seconds
    return total / len(specs)


# --------------------------------------------------------------------- #
# Figure 1: LU under the Credit scheduler
# --------------------------------------------------------------------- #
def fig01_lu_runtime(scale: float = 0.6,
                     seeds: Sequence[int] = (1, 2),
                     jobs: Jobs = None,
                     cache: Optional[ResultCache] = None) -> FigureResult:
    """Fig 1(a): LU run time vs VCPU online rate under Credit."""
    result = FigureResult("Figure 1a",
                          "LU run time vs VCPU online rate (Credit)")
    grid = {rate: [single_vm_cell(_nas("LU", scale), "credit",
                                  online_rate=rate, seed=seed)
                   for seed in seeds]
            for rate in PAPER_RATES}
    results = run_cells([c for cells in grid.values() for c in cells],
                        jobs=jobs, cache=cache)
    pts = []
    for rate in PAPER_RATES:
        rt = _mean_runtime(results, grid[rate])
        pts.append((float(RATE_LABELS[rate]), rt))
    result.series["runtime_s"] = pts
    base = pts[0][1]
    result.series["slowdown"] = [(x, y / base) for x, y in pts]
    result.series["ideal_slowdown"] = [
        (float(RATE_LABELS[r]), ideal_slowdown(r)) for r in PAPER_RATES]
    result.fingerprint = results.combined_fingerprint()
    return result


def fig01_spinlock_counts(scale: float = 0.6,
                          seeds: Sequence[int] = (1, 2, 3),
                          window_s: float = 30.0,
                          jobs: Jobs = None,
                          cache: Optional[ResultCache] = None
                          ) -> FigureResult:
    """Fig 1(b): number of spinlocks with waits > 2^10 and > 2^20 cycles,
    per VCPU online rate (Credit).

    The paper counts within a fixed 30 s observation window while the
    benchmark runs, so at lower online rates *less of LU executes inside
    the window* and the >2^10 population shrinks, while the >2^20
    population still grows.  Our runs execute fixed work, so counts are
    normalised to the same fixed window (count / runtime * window).
    """
    result = FigureResult(
        "Figure 1b",
        f"spinlock wait counts per {window_s:.0f}s window (Credit)")
    grid = {rate: [single_vm_cell(_nas("LU", scale), "credit",
                                  online_rate=rate, seed=seed)
                   for seed in seeds]
            for rate in PAPER_RATES}
    results = run_cells([c for cells in grid.values() for c in cells],
                        jobs=jobs, cache=cache)
    over10, over20 = [], []
    for rate in PAPER_RATES:
        c10 = c20 = 0.0
        for spec in grid[rate]:
            r = _single(results, spec)
            norm = window_s / r.runtime_seconds
            c10 += r.spin_summary["over_2^10"] * norm
            c20 += r.spin_summary["over_2^20"] * norm
        x = float(RATE_LABELS[rate])
        over10.append((x, c10 / len(seeds)))
        over20.append((x, c20 / len(seeds)))
    result.series["waits_over_2^10"] = over10
    result.series["waits_over_2^20"] = over20
    result.fingerprint = results.combined_fingerprint()
    return result


# --------------------------------------------------------------------- #
# Figures 2 and 8: per-spinlock wait scatter
# --------------------------------------------------------------------- #
def fig02_wait_details(scheduler: str = "credit", scale: float = 0.6,
                       seed: int = 1,
                       jobs: Jobs = None,
                       cache: Optional[ResultCache] = None) -> FigureResult:
    """Fig 2 (Credit) / Fig 8 (ASMan): the detailed per-spinlock waiting
    time — (acquisition index, log2 wait) — at each online rate."""
    fig = "Figure 2" if scheduler == "credit" else "Figure 8"
    result = FigureResult(
        fig, f"per-spinlock wait detail under {scheduler}")
    cells = {rate: single_vm_cell(_nas("LU", scale), scheduler,
                                  online_rate=rate, seed=seed,
                                  collect_scatter=True)
             for rate in PAPER_RATES}
    results = run_cells(cells.values(), jobs=jobs, cache=cache)
    for rate in PAPER_RATES:
        r = _single(results, cells[rate])
        label = f"rate_{RATE_LABELS[rate]}%"
        result.series[label] = [(float(i), w) for i, w in r.spin_scatter]
        result.notes[f"max_log2_{RATE_LABELS[rate]}"] = \
            r.spin_summary["max_log2"]
    result.fingerprint = results.combined_fingerprint()
    return result


def fig08_wait_details_asman(scale: float = 0.6, seed: int = 1,
                             jobs: Jobs = None,
                             cache: Optional[ResultCache] = None
                             ) -> FigureResult:
    """Fig 8: the Fig 2 scatter under ASMan."""
    return fig02_wait_details("asman", scale, seed, jobs=jobs, cache=cache)


# --------------------------------------------------------------------- #
# Figure 7: LU run time, Credit vs ASMan
# --------------------------------------------------------------------- #
def fig07_lu_comparison(scale: float = 0.6,
                        seeds: Sequence[int] = (1, 2, 3),
                        jobs: Jobs = None,
                        cache: Optional[ResultCache] = None) -> FigureResult:
    """Fig 7: LU run time per online rate, Credit vs ASMan."""
    result = FigureResult("Figure 7",
                          "LU run time in VM V1: Credit vs ASMan")
    grid = {(sched, rate): [single_vm_cell(_nas("LU", scale), sched,
                                           online_rate=rate, seed=seed)
                            for seed in seeds]
            for sched in ("credit", "asman") for rate in PAPER_RATES}
    results = run_cells([c for cells in grid.values() for c in cells],
                        jobs=jobs, cache=cache)
    for sched in ("credit", "asman"):
        pts = []
        for rate in PAPER_RATES:
            rt = _mean_runtime(results, grid[(sched, rate)])
            pts.append((float(RATE_LABELS[rate]), rt))
        result.series[sched] = pts
    credit = dict(result.series["credit"])
    asman = dict(result.series["asman"])
    low = float(RATE_LABELS[2.0 / 9.0])
    result.notes["asman_saving_at_22.2%"] = 1.0 - asman[low] / credit[low]
    result.fingerprint = results.combined_fingerprint()
    return result


# --------------------------------------------------------------------- #
# Figure 9: slowdowns of all NAS benchmarks
# --------------------------------------------------------------------- #
def fig09_nas_slowdowns(rates: Sequence[float] = (2 / 3, 0.4, 2 / 9),
                        benchmarks: Optional[Sequence[str]] = None,
                        scale: float = 0.4,
                        seeds: Sequence[int] = (1, 2),
                        jobs: Jobs = None,
                        cache: Optional[ResultCache] = None) -> FigureResult:
    """Fig 9(a-c): per-benchmark slowdown at each reduced online rate for
    Credit and ASMan; Fig 9(d): the average slowdown."""
    names = list(benchmarks or NAS_PROFILES)
    result = FigureResult("Figure 9", "NAS benchmark slowdowns")
    base_cells = {name: [single_vm_cell(_nas(name, scale), "credit",
                                        online_rate=1.0, seed=seed)
                         for seed in seeds]
                  for name in names}
    grid = {(rate, sched, name): [
        single_vm_cell(_nas(name, scale), sched, online_rate=rate, seed=seed)
        for seed in seeds]
        for rate in rates for sched in ("credit", "asman") for name in names}
    batch = [c for cells in base_cells.values() for c in cells]
    batch += [c for cells in grid.values() for c in cells]
    results = run_cells(batch, jobs=jobs, cache=cache)
    bases = {name: _mean_runtime(results, base_cells[name])
             for name in names}
    averages: Dict[str, List[Tuple[float, float]]] = {
        "credit": [], "asman": []}
    for rate in rates:
        for sched in ("credit", "asman"):
            series = []
            for name in names:
                rt = _mean_runtime(results, grid[(rate, sched, name)])
                series.append((names.index(name), rt / bases[name]))
            key = f"{sched}_rate_{RATE_LABELS[rate]}%"
            result.series[key] = series
            mean_sd = sum(y for _, y in series) / len(series)
            averages[sched].append((float(RATE_LABELS[rate]), mean_sd))
    result.series["avg_credit"] = averages["credit"]
    result.series["avg_asman"] = averages["asman"]
    result.notes["benchmark_order"] = float(len(names))
    result.fingerprint = results.combined_fingerprint()
    return result


# --------------------------------------------------------------------- #
# Figure 10: SPECjbb throughput
# --------------------------------------------------------------------- #
def fig10_specjbb(rates: Sequence[float] = (2 / 3, 0.4, 2 / 9),
                  warehouses: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
                  window_ms: float = 1500.0,
                  seed: int = 1,
                  jobs: Jobs = None,
                  cache: Optional[ResultCache] = None) -> FigureResult:
    """Fig 10(a-c): throughput vs warehouses per rate; (d): the score
    (mean bops over warehouses >= 4)."""
    result = FigureResult("Figure 10", "SPECjbb2005 throughput (bops)")
    cells = {(rate, sched, w): specjbb_cell(
        w, scheduler=sched, online_rate=rate,
        window_cycles=units.ms(window_ms), seed=seed)
        for rate in rates for sched in ("credit", "asman")
        for w in warehouses}
    results = run_cells(cells.values(), jobs=jobs, cache=cache)
    scores: Dict[str, List[Tuple[float, float]]] = {
        "credit": [], "asman": []}
    for rate in rates:
        for sched in ("credit", "asman"):
            by_w: Dict[int, float] = {}
            for w in warehouses:
                r = results.value(cells[(rate, sched, w)])
                assert isinstance(r, SpecJbbResult)
                by_w[w] = r.bops
            key = f"{sched}_rate_{RATE_LABELS[rate]}%"
            result.series[key] = [(float(w), b) for w, b in by_w.items()]
            scores[sched].append(
                (float(RATE_LABELS[rate]), bops_score(by_w, 4)))
    result.series["score_credit"] = scores["credit"]
    result.series["score_asman"] = scores["asman"]
    result.fingerprint = results.combined_fingerprint()
    return result


# --------------------------------------------------------------------- #
# Figures 11 and 12: multiple VMs
# --------------------------------------------------------------------- #
#: The paper's four VM combinations (Section 5.3): (vm, label, family,
#: profile, concurrent) — declarative so combinations canonicalise.
COMBINATIONS: Dict[str, List[Tuple[str, str, str, str, bool]]] = {
    "fig11a": [
        ("V1", "256.bzip2", "speccpu", "256.bzip2", False),
        ("V2", "176.gcc", "speccpu", "176.gcc", False),
        ("V3", "SP", "nas", "SP", True),
        ("V4", "LU", "nas", "LU", True),
    ],
    "fig11b": [
        ("V1", "LU", "nas", "LU", True),
        ("V2", "LU", "nas", "LU", True),
        ("V3", "SP", "nas", "SP", True),
        ("V4", "SP", "nas", "SP", True),
    ],
    "fig12a": [
        ("V1", "256.bzip2", "speccpu", "256.bzip2", False),
        ("V2", "256.bzip2", "speccpu", "256.bzip2", False),
        ("V3", "176.gcc", "speccpu", "176.gcc", False),
        ("V4", "176.gcc", "speccpu", "176.gcc", False),
        ("V5", "SP", "nas", "SP", True),
        ("V6", "LU", "nas", "LU", True),
    ],
    "fig12b": [
        ("V1", "256.bzip2", "speccpu", "256.bzip2", False),
        ("V2", "176.gcc", "speccpu", "176.gcc", False),
        ("V3", "SP", "nas", "SP", True),
        ("V4", "SP", "nas", "SP", True),
        ("V5", "LU", "nas", "LU", True),
        ("V6", "LU", "nas", "LU", True),
    ],
}


def multi_vm_figure(combination: str, scale: float = 0.3,
                    seeds: Sequence[int] = (1, 2),
                    measure_rounds: int = 2,
                    rounds: int = 40,
                    jobs: Jobs = None,
                    cache: Optional[ResultCache] = None) -> FigureResult:
    """Figs 11-12: run one VM combination under Credit, ASMan and CON and
    report each VM's averaged round time (the paper's bar heights)."""
    combo = COMBINATIONS.get(combination)
    if combo is None:
        raise KeyError(f"unknown combination {combination!r}; "
                       f"choose from {sorted(COMBINATIONS)}")
    result = FigureResult(
        combination.replace("fig", "Figure "),
        "per-VM run time under Credit / ASMan / CON")
    deadline = units.seconds(600)
    assignments = tuple(
        (vm, WorkloadSpec(family, profile, scale=scale, rounds=rounds),
         concurrent)
        for vm, _, family, profile, concurrent in combo)
    cells = {(sched, seed): multi_vm_cell(
        assignments, scheduler=sched, seed=seed,
        measure_rounds=measure_rounds, deadline_cycles=deadline)
        for sched in ("credit", "asman", "con") for seed in seeds}
    results = run_cells(cells.values(), jobs=jobs, cache=cache)
    for sched in ("credit", "asman", "con"):
        acc = {vm: 0.0 for vm, _, _, _, _ in combo}
        for seed in seeds:
            r = results.value(cells[(sched, seed)])
            for vm in acc:
                acc[vm] += r.round_seconds[vm]  # type: ignore[attr-defined]
        result.series[sched] = [
            (i, acc[vm] / len(seeds))
            for i, (vm, _, _, _, _) in enumerate(combo)]
    labels = {i: f"{vm}:{label}"
              for i, (vm, label, _, _, _) in enumerate(combo)}
    result.notes.update({f"x{i}": float(i) for i in labels})
    result.description += "  [" + ", ".join(
        labels[i] for i in sorted(labels)) + "]"
    result.fingerprint = results.combined_fingerprint()
    return result


def fig11a(**kw) -> FigureResult:
    """Fig 11(a): bzip2 + gcc + SP + LU on four VMs."""
    return multi_vm_figure("fig11a", **kw)


def fig11b(**kw) -> FigureResult:
    """Fig 11(b): LU + LU + SP + SP on four VMs."""
    return multi_vm_figure("fig11b", **kw)


def fig12a(**kw) -> FigureResult:
    """Fig 12(a): four throughput VMs + SP + LU."""
    return multi_vm_figure("fig12a", **kw)


def fig12b(**kw) -> FigureResult:
    """Fig 12(b): two throughput VMs + SP, SP, LU, LU."""
    return multi_vm_figure("fig12b", **kw)
