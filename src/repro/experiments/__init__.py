"""Experiment drivers reproducing the paper's evaluation (Section 5).

:mod:`repro.experiments.setup` builds the paper's testbed (8 PCPUs, Xen
credit timing, Domain-0); :mod:`repro.experiments.runner` runs single-VM
and multi-VM scenarios; ``figures.py`` contains one driver per figure of
the paper.  The ``benchmarks/`` tree calls into these drivers and prints
the series each figure plots.
"""

from repro.experiments.setup import Testbed, weight_for_rate, make_scheduler
from repro.experiments.runner import (
    SingleVmResult, MultiVmResult, SpecJbbResult, run_single_vm,
    run_multi_vm, run_specjbb, run_cells, PAPER_RATES,
)
from repro.experiments.sweeps import Sweep, SweepResult
from repro.experiments.calibration import CalibrationReport, calibrate
from repro.experiments.robustness import (FAULT_CLASSES, RobustnessResult,
                                          robustness_report)

__all__ = [
    "Testbed", "weight_for_rate", "make_scheduler",
    "SingleVmResult", "MultiVmResult", "SpecJbbResult",
    "run_single_vm", "run_multi_vm", "run_specjbb", "run_cells",
    "PAPER_RATES",
    "Sweep", "SweepResult", "CalibrationReport", "calibrate",
    "FAULT_CLASSES", "RobustnessResult", "robustness_report",
]
