"""Scenario runners: single-VM sweeps, multi-VM mixes, SPECjbb windows.

These reproduce the paper's three experimental methodologies:

* **Single VM** (Section 5.2): one guest VM V1 (4 VCPUs) plus an idle
  Domain-0, non-work-conserving mode, V1's weight swept over
  256/128/64/32 to hit online rates 100/66.7/40/22.2%.
* **Multiple VMs** (Section 5.3): 4 or 6 guest VMs (4 VCPUs each, weight
  256) plus Domain-0, work-conserving mode; each benchmark loops and the
  first completed rounds are averaged while all neighbours stay loaded.
* **SPECjbb window**: a fixed measurement window with warehouse counters.

Deadline policy: a run that exhausts its simulated-time budget either
raises :class:`~repro.errors.SimulationError` (``on_deadline="raise"``,
the default) or returns a structured result with ``finished=False``
(``on_deadline="return"``).  The structured form is pickle-friendly, so
a timed-out cell crossing a process-pool boundary reports *what* timed
out instead of poisoning the whole batch.

Batch execution: :func:`run_cells` fans a list of declarative
:class:`~repro.parallel.cells.CellSpec` out over the parallel experiment
fabric (process pool + content-addressed result cache) and merges the
results deterministically — see :mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple, Union)

from repro import units
from repro.config import SchedulerConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.setup import Testbed, weight_for_rate
from repro.faults import FaultSpec
from repro.metrics.fairness import FairnessReport
from repro.metrics.timeline import TimelineCollector
from repro.workloads.base import Workload
from repro.workloads.specjbb import SpecJbbWorkload

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.cache import ResultCache
    from repro.parallel.cells import CellSpec
    from repro.parallel.chaos import ChaosSpec
    from repro.parallel.executor import CellResults
    from repro.parallel.supervisor import SupervisorPolicy

#: The paper's four VCPU online rates (Section 5.2).
PAPER_RATES: Tuple[float, ...] = (1.0, 2.0 / 3.0, 0.4, 2.0 / 9.0)

#: Hard ceiling on simulated time; a run that hits it is reported failed
#: rather than looping forever (a scheduler bug would otherwise hang).
DEFAULT_DEADLINE = units.seconds(240)

#: SPECjbb measurement defaults (Figure 10's fixed window).
DEFAULT_SPECJBB_WINDOW = units.seconds(2)
DEFAULT_SPECJBB_WARMUP = units.ms(200)

WorkloadFactory = Callable[[], Workload]

#: One captured trace event: (time, category, payload).  Payloads are
#: canonicalised to plain JSON-stable data so results stay picklable and
#: fingerprint-stable across processes (the golden-trace contract).
TraceEvent = Tuple[int, str, Dict[str, object]]


def _check_on_deadline(on_deadline: str) -> None:
    if on_deadline not in ("raise", "return"):
        raise ConfigurationError(
            f"on_deadline must be 'raise' or 'return', got {on_deadline!r}")


def _captured_trace(tb: Testbed,
                    collect_trace: Sequence[str]) -> Optional[List[TraceEvent]]:
    """Serialise retained trace records into canonical event tuples."""
    if not collect_trace:
        return None
    from repro.parallel.cells import canonical_value
    wanted = set(collect_trace)
    events: List[TraceEvent] = []
    for rec in tb.trace.records:
        if rec.category not in wanted:
            continue
        payload = canonical_value(rec.payload)
        assert isinstance(payload, dict)
        events.append((rec.time, rec.category, payload))
    return events


@dataclass
class SingleVmResult:
    """Outcome of one single-VM run.

    ``finished=False`` marks a run that hit its deadline: runtime fields
    then cover the simulated time actually executed, and the spinlock
    statistics summarise the truncated run.
    """

    scheduler: str
    online_rate: float
    weight: int
    runtime_cycles: int
    runtime_seconds: float
    measured_online_rate: float
    spin_summary: Dict[str, float]
    spin_scatter: List[Tuple[int, float]]
    over_threshold_times: List[int]
    monitor_stats: Optional[Dict[str, int]] = None
    vcrd_changes: int = 0
    finished: bool = True
    #: Simulator events executed — the perf fabric's throughput unit.
    events_executed: int = 0
    #: Fraction of V1's any-online time with *all* VCPUs online; only
    #: populated when the run was asked to ``collect_timeline``.
    co_online_fraction: Optional[float] = None
    #: Fault-injection counters (None when the run had no fault spec).
    fault_stats: Optional[Dict[str, int]] = None
    #: Captured trace events, only when the run was asked to
    #: ``collect_trace`` specific categories (golden-trace recording).
    trace_events: Optional[List[TraceEvent]] = None

    def raise_if_unfinished(self) -> "SingleVmResult":
        if not self.finished:
            raise SimulationError(
                f"single-VM run ({self.scheduler}, "
                f"rate={self.online_rate:.3f}) did not finish within "
                f"{self.runtime_seconds:.0f} simulated seconds")
        return self


def run_single_vm(workload_factory: WorkloadFactory,
                  scheduler: str = "credit",
                  online_rate: float = 1.0,
                  seed: int = 1,
                  num_pcpus: int = 8,
                  num_vcpus: int = 4,
                  deadline_cycles: int = DEFAULT_DEADLINE,
                  collect_scatter: bool = False,
                  sched_config: Optional[SchedulerConfig] = None,
                  on_deadline: str = "raise",
                  faults: Optional[FaultSpec] = None,
                  collect_timeline: bool = False,
                  collect_trace: Sequence[str] = ()) -> SingleVmResult:
    """Section 5.2's scenario: V1 + idle Domain-0, NWC mode."""
    _check_on_deadline(on_deadline)
    weight = weight_for_rate(online_rate, num_pcpus=num_pcpus,
                             num_vcpus=num_vcpus)
    cfg = sched_config if sched_config is not None \
        else SchedulerConfig(work_conserving=False)
    tb = Testbed(scheduler=scheduler, num_pcpus=num_pcpus, seed=seed,
                 sched_config=cfg, faults=faults)
    if collect_trace:
        tb.trace.retain(*collect_trace)
    timeline = TimelineCollector(tb.trace, tb.sim) if collect_timeline \
        else None
    tb.add_domain0()
    workload = workload_factory()
    vm = tb.add_vm("V1", num_vcpus=num_vcpus, weight=weight,
                   workload=workload, concurrent_hint=True)
    finished = tb.run_until_workloads_done(["V1"],
                                           deadline_cycles=deadline_cycles)
    if not finished and on_deadline == "raise":
        raise SimulationError(
            f"single-VM run ({scheduler}, rate={online_rate:.3f}) did not "
            f"finish within {units.to_seconds(deadline_cycles):.0f} "
            f"simulated seconds")
    stats = tb.spin_stats("V1")
    monitor = tb.monitors.get("V1")
    end_cycle = tb.guests["V1"].finished_at if finished else tb.sim.now
    co_online: Optional[float] = None
    if timeline is not None:
        timeline.close()
        co_online = timeline.co_online_fraction("V1", parties=num_vcpus)
    return SingleVmResult(
        scheduler=scheduler,
        online_rate=online_rate,
        weight=weight,
        runtime_cycles=end_cycle,
        runtime_seconds=units.to_seconds(end_cycle),
        measured_online_rate=tb.measured_online_rate("V1"),
        spin_summary=stats.summary(),
        spin_scatter=stats.scatter() if collect_scatter else [],
        over_threshold_times=stats.over_threshold_times(),
        monitor_stats=monitor.stats() if monitor else None,
        vcrd_changes=vm.vcrd_changes,
        finished=finished,
        events_executed=tb.sim.events_executed,
        co_online_fraction=co_online,
        fault_stats=tb.faults.stats() if tb.faults is not None else None,
        trace_events=_captured_trace(tb, collect_trace),
    )


@dataclass
class MultiVmResult:
    """Outcome of one multi-VM mix.

    On an unfinished run (``finished=False``), ``round_seconds`` holds
    only the VMs that completed ``rounds_measured`` rounds before the
    deadline; ``labels`` always covers every VM.
    """

    scheduler: str
    #: vm name -> mean round time in seconds (the paper's averaged run time).
    round_seconds: Dict[str, float] = field(default_factory=dict)
    #: vm name -> workload label (e.g. "nas.lu", "speccpu.176.gcc").
    labels: Dict[str, str] = field(default_factory=dict)
    rounds_measured: int = 0
    fairness_jains: float = 1.0
    finished: bool = True
    events_executed: int = 0
    #: Fault-injection counters (None when the run had no fault spec).
    fault_stats: Optional[Dict[str, int]] = None
    #: Captured trace events (``collect_trace`` categories), else None.
    trace_events: Optional[List[TraceEvent]] = None

    def raise_if_unfinished(self) -> "MultiVmResult":
        if not self.finished:
            raise SimulationError(
                f"multi-VM run ({self.scheduler}) did not reach "
                f"{self.rounds_measured} rounds before its deadline")
        return self


def run_multi_vm(assignments: Sequence[Tuple[str, WorkloadFactory, bool]],
                 scheduler: str = "credit",
                 seed: int = 1,
                 num_pcpus: int = 8,
                 num_vcpus: int = 4,
                 measure_rounds: int = 2,
                 deadline_cycles: int = DEFAULT_DEADLINE,
                 sched_config: Optional[SchedulerConfig] = None,
                 on_deadline: str = "raise",
                 faults: Optional[FaultSpec] = None,
                 collect_trace: Sequence[str] = ()) -> MultiVmResult:
    """Section 5.3's scenario: several weight-256 VMs, WC mode.

    ``assignments`` is a list of (vm_name, workload_factory, concurrent)
    triples; ``concurrent`` marks the VM for the CON scheduler.  Every
    workload must have been built with enough ``rounds`` that it is still
    running when the slowest VM completes ``measure_rounds`` rounds —
    exactly the paper's batch-program methodology.
    """
    _check_on_deadline(on_deadline)
    if not assignments:
        raise ConfigurationError("need at least one VM assignment")
    cfg = sched_config if sched_config is not None \
        else SchedulerConfig(work_conserving=True)
    tb = Testbed(scheduler=scheduler, num_pcpus=num_pcpus, seed=seed,
                 sched_config=cfg, faults=faults)
    if collect_trace:
        tb.trace.retain(*collect_trace)
    tb.add_domain0()
    workloads: Dict[str, Workload] = {}
    for name, factory, concurrent in assignments:
        wl = factory()
        if wl.rounds < measure_rounds + 1:
            raise ConfigurationError(
                f"workload for {name} has rounds={wl.rounds}; needs at "
                f"least measure_rounds+1={measure_rounds + 1} so neighbours "
                f"stay loaded during measurement")
        tb.add_vm(name, num_vcpus=num_vcpus, weight=256, workload=wl,
                  concurrent_hint=concurrent)
        workloads[name] = wl
    tb.start()
    done = tb.sim.run_until_true(
        lambda: all(w.rounds_completed() >= measure_rounds
                    for w in workloads.values()),
        deadline=deadline_cycles)
    if not done and on_deadline == "raise":
        raise SimulationError(
            f"multi-VM run ({scheduler}) did not reach {measure_rounds} "
            f"rounds within {units.to_seconds(deadline_cycles):.0f} "
            f"simulated seconds")
    result = MultiVmResult(scheduler=scheduler,
                           rounds_measured=measure_rounds,
                           finished=done,
                           events_executed=tb.sim.events_executed,
                           fault_stats=tb.faults.stats()
                           if tb.faults is not None else None,
                           trace_events=_captured_trace(tb, collect_trace))
    for name, wl in workloads.items():
        result.labels[name] = wl.name
        if wl.rounds_completed() >= measure_rounds:
            result.round_seconds[name] = units.to_seconds(
                int(wl.mean_round_cycles(measure_rounds)))
    # Fairness check over the guest VMs (Domain-0 is idle).
    guests = [tb.vms[n] for n, _, _ in assignments]
    if tb.sim.now > 0:
        report = FairnessReport(guests, tb.sim.now, len(tb.machine))
        result.fairness_jains = report.jains()
    return result


@dataclass
class SpecJbbResult:
    scheduler: str
    online_rate: float
    warehouses: int
    bops: float
    window_seconds: float
    events_executed: int = 0


def run_specjbb(warehouses: int,
                scheduler: str = "credit",
                online_rate: float = 1.0,
                window_cycles: int = DEFAULT_SPECJBB_WINDOW,
                warmup_cycles: int = DEFAULT_SPECJBB_WARMUP,
                seed: int = 1,
                num_pcpus: int = 8,
                num_vcpus: int = 4,
                sched_config: Optional[SchedulerConfig] = None,
                faults: Optional[FaultSpec] = None) -> SpecJbbResult:
    """Figure 10's scenario: V1 runs SPECjbb with W warehouses; bops are
    counted over a fixed window after a short warm-up."""
    weight = weight_for_rate(online_rate, num_pcpus=num_pcpus,
                             num_vcpus=num_vcpus)
    cfg = sched_config if sched_config is not None \
        else SchedulerConfig(work_conserving=False)
    tb = Testbed(scheduler=scheduler, num_pcpus=num_pcpus, seed=seed,
                 sched_config=cfg, faults=faults)
    tb.add_domain0()
    wl = SpecJbbWorkload(warehouses)
    tb.add_vm("V1", num_vcpus=num_vcpus, weight=weight, workload=wl,
              concurrent_hint=True)
    tb.run_for(warmup_cycles)
    before = wl.total_transactions()
    tb.run_for(window_cycles)
    after = wl.total_transactions()
    bops = (after - before) / units.to_seconds(window_cycles)
    return SpecJbbResult(scheduler=scheduler, online_rate=online_rate,
                         warehouses=warehouses, bops=bops,
                         window_seconds=units.to_seconds(window_cycles),
                         events_executed=tb.sim.events_executed)


def run_cells(specs: Iterable["CellSpec"],
              jobs: Optional[Union[int, str]] = None,
              cache: Optional["ResultCache"] = None,
              progress: Optional[Callable[[str], None]] = None,
              policy: Optional["SupervisorPolicy"] = None,
              resume: Optional[bool] = None,
              chaos: Optional["ChaosSpec"] = None) -> "CellResults":
    """Batch entry point: run declarative cells on the parallel fabric.

    Thin re-export of :func:`repro.parallel.executor.run_cells` so
    experiment code can stay within ``repro.experiments``; see
    :mod:`repro.parallel` for the CellSpec vocabulary, job resolution
    (``jobs``/``REPRO_JOBS``/fabric default), the result cache, and —
    when ``policy``/``resume``/``chaos`` are given or fabric-wide
    supervision defaults are installed — the supervised execution path
    (:mod:`repro.parallel.supervisor`).
    """
    from repro.parallel.executor import run_cells as _run_cells
    return _run_cells(specs, jobs=jobs, cache=cache, progress=progress,
                      policy=policy, resume=resume, chaos=chaos)
