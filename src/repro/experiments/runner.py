"""Scenario runners: single-VM sweeps, multi-VM mixes, SPECjbb windows.

These reproduce the paper's three experimental methodologies:

* **Single VM** (Section 5.2): one guest VM V1 (4 VCPUs) plus an idle
  Domain-0, non-work-conserving mode, V1's weight swept over
  256/128/64/32 to hit online rates 100/66.7/40/22.2%.
* **Multiple VMs** (Section 5.3): 4 or 6 guest VMs (4 VCPUs each, weight
  256) plus Domain-0, work-conserving mode; each benchmark loops and the
  first completed rounds are averaged while all neighbours stay loaded.
* **SPECjbb window**: a fixed measurement window with warehouse counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.config import SchedulerConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.setup import Testbed, weight_for_rate
from repro.workloads.base import Workload
from repro.workloads.specjbb import SpecJbbWorkload

#: The paper's four VCPU online rates (Section 5.2).
PAPER_RATES: Tuple[float, ...] = (1.0, 2.0 / 3.0, 0.4, 2.0 / 9.0)

#: Hard ceiling on simulated time; a run that hits it is reported failed
#: rather than looping forever (a scheduler bug would otherwise hang).
DEFAULT_DEADLINE = units.seconds(240)

WorkloadFactory = Callable[[], Workload]


@dataclass
class SingleVmResult:
    """Outcome of one single-VM run."""

    scheduler: str
    online_rate: float
    weight: int
    runtime_cycles: int
    runtime_seconds: float
    measured_online_rate: float
    spin_summary: Dict[str, float]
    spin_scatter: List[Tuple[int, float]]
    over_threshold_times: List[int]
    monitor_stats: Optional[Dict[str, int]] = None
    vcrd_changes: int = 0
    finished: bool = True


def run_single_vm(workload_factory: WorkloadFactory,
                  scheduler: str = "credit",
                  online_rate: float = 1.0,
                  seed: int = 1,
                  num_pcpus: int = 8,
                  num_vcpus: int = 4,
                  deadline_cycles: int = DEFAULT_DEADLINE,
                  collect_scatter: bool = False) -> SingleVmResult:
    """Section 5.2's scenario: V1 + idle Domain-0, NWC mode."""
    weight = weight_for_rate(online_rate, num_pcpus=num_pcpus,
                             num_vcpus=num_vcpus)
    cfg = SchedulerConfig(work_conserving=False)
    tb = Testbed(scheduler=scheduler, num_pcpus=num_pcpus, seed=seed,
                 sched_config=cfg)
    tb.add_domain0()
    workload = workload_factory()
    vm = tb.add_vm("V1", num_vcpus=num_vcpus, weight=weight,
                   workload=workload, concurrent_hint=True)
    finished = tb.run_until_workloads_done(["V1"],
                                           deadline_cycles=deadline_cycles)
    if not finished:
        raise SimulationError(
            f"single-VM run ({scheduler}, rate={online_rate:.3f}) did not "
            f"finish within {units.to_seconds(deadline_cycles):.0f} "
            f"simulated seconds")
    stats = tb.spin_stats("V1")
    monitor = tb.monitors.get("V1")
    return SingleVmResult(
        scheduler=scheduler,
        online_rate=online_rate,
        weight=weight,
        runtime_cycles=tb.guests["V1"].finished_at,
        runtime_seconds=units.to_seconds(tb.guests["V1"].finished_at),
        measured_online_rate=tb.measured_online_rate("V1"),
        spin_summary=stats.summary(),
        spin_scatter=stats.scatter() if collect_scatter else [],
        over_threshold_times=stats.over_threshold_times(),
        monitor_stats=monitor.stats() if monitor else None,
        vcrd_changes=vm.vcrd_changes,
        finished=True,
    )


@dataclass
class MultiVmResult:
    """Outcome of one multi-VM mix."""

    scheduler: str
    #: vm name -> mean round time in seconds (the paper's averaged run time).
    round_seconds: Dict[str, float] = field(default_factory=dict)
    #: vm name -> workload label (e.g. "nas.lu", "speccpu.176.gcc").
    labels: Dict[str, str] = field(default_factory=dict)
    rounds_measured: int = 0
    fairness_jains: float = 1.0


def run_multi_vm(assignments: Sequence[Tuple[str, WorkloadFactory, bool]],
                 scheduler: str = "credit",
                 seed: int = 1,
                 num_pcpus: int = 8,
                 num_vcpus: int = 4,
                 measure_rounds: int = 2,
                 deadline_cycles: int = DEFAULT_DEADLINE) -> MultiVmResult:
    """Section 5.3's scenario: several weight-256 VMs, WC mode.

    ``assignments`` is a list of (vm_name, workload_factory, concurrent)
    triples; ``concurrent`` marks the VM for the CON scheduler.  Every
    workload must have been built with enough ``rounds`` that it is still
    running when the slowest VM completes ``measure_rounds`` rounds —
    exactly the paper's batch-program methodology.
    """
    if not assignments:
        raise ConfigurationError("need at least one VM assignment")
    cfg = SchedulerConfig(work_conserving=True)
    tb = Testbed(scheduler=scheduler, num_pcpus=num_pcpus, seed=seed,
                 sched_config=cfg)
    tb.add_domain0()
    workloads: Dict[str, Workload] = {}
    for name, factory, concurrent in assignments:
        wl = factory()
        if wl.rounds < measure_rounds + 1:
            raise ConfigurationError(
                f"workload for {name} has rounds={wl.rounds}; needs at "
                f"least measure_rounds+1={measure_rounds + 1} so neighbours "
                f"stay loaded during measurement")
        tb.add_vm(name, num_vcpus=num_vcpus, weight=256, workload=wl,
                  concurrent_hint=concurrent)
        workloads[name] = wl
    tb.start()
    done = tb.sim.run_until_true(
        lambda: all(w.rounds_completed() >= measure_rounds
                    for w in workloads.values()),
        deadline=deadline_cycles)
    if not done:
        raise SimulationError(
            f"multi-VM run ({scheduler}) did not reach {measure_rounds} "
            f"rounds within {units.to_seconds(deadline_cycles):.0f} "
            f"simulated seconds")
    result = MultiVmResult(scheduler=scheduler, rounds_measured=measure_rounds)
    for name, wl in workloads.items():
        result.round_seconds[name] = units.to_seconds(
            int(wl.mean_round_cycles(measure_rounds)))
        result.labels[name] = wl.name
    # Fairness check over the guest VMs (Domain-0 is idle).
    from repro.metrics.fairness import FairnessReport
    guests = [tb.vms[n] for n, _, _ in assignments]
    if tb.sim.now > 0:
        report = FairnessReport(guests, tb.sim.now, len(tb.machine))
        result.fairness_jains = report.jains()
    return result


@dataclass
class SpecJbbResult:
    scheduler: str
    online_rate: float
    warehouses: int
    bops: float
    window_seconds: float


def run_specjbb(warehouses: int,
                scheduler: str = "credit",
                online_rate: float = 1.0,
                window_cycles: int = units.seconds(2),
                warmup_cycles: int = units.ms(200),
                seed: int = 1,
                num_pcpus: int = 8,
                num_vcpus: int = 4) -> SpecJbbResult:
    """Figure 10's scenario: V1 runs SPECjbb with W warehouses; bops are
    counted over a fixed window after a short warm-up."""
    weight = weight_for_rate(online_rate, num_pcpus=num_pcpus,
                             num_vcpus=num_vcpus)
    cfg = SchedulerConfig(work_conserving=False)
    tb = Testbed(scheduler=scheduler, num_pcpus=num_pcpus, seed=seed,
                 sched_config=cfg)
    tb.add_domain0()
    wl = SpecJbbWorkload(warehouses)
    tb.add_vm("V1", num_vcpus=num_vcpus, weight=weight, workload=wl,
              concurrent_hint=True)
    tb.run_for(warmup_cycles)
    before = wl.total_transactions()
    tb.run_for(window_cycles)
    after = wl.total_transactions()
    bops = (after - before) / units.to_seconds(window_cycles)
    return SpecJbbResult(scheduler=scheduler, online_rate=online_rate,
                         warehouses=warehouses, bops=bops,
                         window_seconds=units.to_seconds(window_cycles))
