"""Command-line interface.

``python -m repro <command>`` (or the ``repro`` console script):

* ``list`` — available figures, workloads and schedulers;
* ``figure <name>`` — rerun one paper figure and print/export its series;
* ``run`` — a single-VM scenario with a chosen workload/scheduler/rate;
* ``sweep`` — the online-rate sweep comparing schedulers (a quick Fig 7);
* ``specjbb`` — the warehouse sweep (a quick Fig 10);
* ``robustness`` — the fault-injection matrix (``repro.faults``): how
  each scheduler degrades under hypercall loss, IPI drops, Monitoring
  Module misreporting and degraded PCPUs;
* ``perf`` — the simulation-core benchmark/regression harness
  (``repro.perf``): emits ``BENCH_<name>.json`` and optionally gates
  against a committed baseline (``--check``);
* ``conform`` — the differential conformance suite
  (``repro.conformance``): a fuzzed scenario corpus cross-checked under
  every scheduler by an invariant oracle, plus golden-trace comparison
  (``--golden check|update``) and failure-artifact replay (``--replay``);
* ``lint`` — the simlint static checker (``repro.analysis``): sim-specific
  determinism and cycle-unit rules, non-zero exit on violations.

The sim subcommands (``run``/``sweep``/``specjbb``) also accept
``--faults KEY=VALUE,...`` to inject a deterministic fault scenario into
the simulated system (see ``docs/robustness.md`` for the vocabulary).

Every simulation-running command accepts ``--sanitize``, which attaches
the runtime scheduler sanitizer (``repro.analysis.sanitizer``) to all
testbeds built in this process; ``REPRO_SANITIZE=1`` does the same from
the environment.

The parallel experiment fabric (``repro.parallel``) adds ``--jobs N|auto``
(also ``REPRO_JOBS``) to fan independent scenario cells out over worker
processes, and a content-addressed result cache under ``.repro-cache/``
that is on by default — ``--no-cache`` disables it, ``--cache-dir``
relocates it.  Results are bit-identical at any job count.

Every fabric batch runs *supervised* (``repro.parallel.supervisor``):
worker crashes rebuild the pool and re-dispatch only the lost cells,
``--cell-timeout``/``--batch-deadline`` bound wall-clock budgets,
``--retries`` bounds deterministic per-cell retry, and each completed
cell is journaled so an interrupted ``sweep``/``conform`` re-run with
``--resume`` re-executes only the missing cells.  ``--no-supervise``
restores the bare PR-3 fan-out; ``--chaos KEY=VALUE,...`` injects
deterministic driver-level faults (worker kills, stalls, cache
corruption — see ``repro chaos`` for the self-proving demo).

Everything the CLI does goes through the same public API the examples
use; it adds no behaviour, only ergonomics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro import units
from repro.experiments import figures as F
from repro.experiments.runner import PAPER_RATES
from repro.metrics import ascii_plot
from repro.metrics.export import figure_to_csv, figure_to_json, write_text
from repro.metrics.report import Table
from repro.metrics.runtime import ideal_slowdown
from repro.workloads.nas import NAS_PROFILES, NasBenchmark
from repro.workloads.speccpu import SPEC_CPU_PROFILES, SpecCpuRateWorkload

#: name -> zero-config callable returning a FigureResult.
FIGURES: Dict[str, Callable[..., "F.FigureResult"]] = {
    "fig01a": F.fig01_lu_runtime,
    "fig01b": F.fig01_spinlock_counts,
    "fig02": F.fig02_wait_details,
    "fig07": F.fig07_lu_comparison,
    "fig08": F.fig08_wait_details_asman,
    "fig09": F.fig09_nas_slowdowns,
    "fig10": F.fig10_specjbb,
    "fig11a": F.fig11a,
    "fig11b": F.fig11b,
    "fig12a": F.fig12a,
    "fig12b": F.fig12b,
}

SCHEDULERS = ("credit", "asman", "con", "relaxed")


def _workload_factory(name: str, scale: float):
    if name.upper() in NAS_PROFILES:
        return lambda: NasBenchmark.by_name(name.upper(), scale=scale)
    if name in SPEC_CPU_PROFILES:
        return lambda: SpecCpuRateWorkload.by_name(name, scale=scale)
    raise SystemExit(
        f"unknown workload {name!r}; choose a NAS benchmark "
        f"({', '.join(NAS_PROFILES)}) or SPEC CPU "
        f"({', '.join(SPEC_CPU_PROFILES)})")


def _workload_spec(name: str, scale: float):
    """Map a CLI workload name to a declarative (cellable) WorkloadSpec."""
    from repro.parallel import WorkloadSpec
    if name.upper() in NAS_PROFILES:
        return WorkloadSpec("nas", name.upper(), scale=scale)
    if name in SPEC_CPU_PROFILES:
        return WorkloadSpec("speccpu", name, scale=scale)
    raise SystemExit(
        f"unknown workload {name!r}; choose a NAS benchmark "
        f"({', '.join(NAS_PROFILES)}) or SPEC CPU "
        f"({', '.join(SPEC_CPU_PROFILES)})")


def _parse_faults(text: Optional[str]):
    """Map the ``--faults`` option to a FaultSpec (None when absent or
    a no-op, so the pristine path stays injector-free)."""
    if text is None:
        return None
    from repro.errors import ConfigurationError
    from repro.faults import FaultSpec
    try:
        spec = FaultSpec.parse(text)
    except ConfigurationError as exc:
        raise SystemExit(f"bad --faults spec: {exc}")
    return None if spec.is_noop() else spec


def _parse_chaos(text: Optional[str]):
    """Map the ``--chaos`` option to a ChaosSpec (None when absent or a
    no-op, so clean runs never touch the injector)."""
    if text is None:
        return None
    from repro.errors import ConfigurationError
    from repro.parallel.chaos import ChaosSpec
    try:
        spec = ChaosSpec.parse(text)
    except ConfigurationError as exc:
        raise SystemExit(f"bad --chaos spec: {exc}")
    return None if spec.is_noop() else spec


# --------------------------------------------------------------------- #
def cmd_list(args) -> int:
    """``repro list``: print figures, workloads, schedulers."""
    print("figures:    " + " ".join(sorted(FIGURES)))
    print("workloads:  " + " ".join(list(NAS_PROFILES)
                                    + list(SPEC_CPU_PROFILES)
                                    + ["specjbb"]))
    print("schedulers: " + " ".join(SCHEDULERS))
    return 0


def cmd_figure(args) -> int:
    """``repro figure <name>``: rerun a paper figure, print/export it."""
    fn = FIGURES.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}; try: "
              + " ".join(sorted(FIGURES)), file=sys.stderr)
        return 2
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.seeds:
        kwargs["seeds"] = tuple(args.seeds)
    try:
        result = fn(**kwargs)
    except TypeError:
        result = fn()  # driver without those knobs (e.g. fig10)
    print(result.render())
    if args.plot:
        line_series = {k: v for k, v in result.series.items()
                       if len(v) <= 64}
        if line_series:
            print()
            print(ascii_plot.line_plot(line_series, title=result.figure))
    if args.json:
        write_text(args.json, figure_to_json(result))
        print(f"\nwrote {args.json}")
    if args.csv:
        write_text(args.csv, figure_to_csv(result))
        print(f"wrote {args.csv}")
    return 0


def cmd_run(args) -> int:
    """``repro run``: one single-VM scenario (optionally verbose)."""
    if args.verbose:
        return _run_verbose(args, _workload_factory(args.workload,
                                                    args.scale))
    from repro.experiments.runner import SingleVmResult
    from repro.parallel import run_cells, single_vm_cell
    faults = _parse_faults(args.faults)
    spec = single_vm_cell(_workload_spec(args.workload, args.scale),
                          scheduler=args.scheduler, online_rate=args.rate,
                          seed=args.seed, collect_scatter=True,
                          faults=faults)
    r = run_cells([spec]).value(spec)
    assert isinstance(r, SingleVmResult)
    print(f"workload={args.workload} scheduler={args.scheduler} "
          f"rate={args.rate:.3f} seed={args.seed}")
    print(f"runtime: {r.runtime_seconds:.3f} s "
          f"(measured online rate {r.measured_online_rate:.3f})")
    print(f"spinlock waits: {int(r.spin_summary['recorded'])} recorded, "
          f">2^20: {int(r.spin_summary['over_2^20'])}, "
          f"max log2: {r.spin_summary['max_log2']:.1f}")
    if r.monitor_stats:
        print(f"monitoring module: {r.monitor_stats}")
    if r.fault_stats is not None:
        fired = {k: v for k, v in r.fault_stats.items() if v}
        print(f"faults ({faults.describe()}): {fired or 'none fired'}")
    if args.plot and r.spin_scatter:
        print()
        print(ascii_plot.wait_histogram(
            [w for _, w in r.spin_scatter],
            title="spinlock wait distribution (log2 cycles)"))
    return 0


def _run_verbose(args, factory) -> int:
    """Single-VM run with guest introspection and a co-online summary."""
    from repro.config import SchedulerConfig
    from repro.experiments.setup import Testbed, weight_for_rate
    from repro.guest.stats import snapshot
    from repro.metrics.timeline import TimelineCollector

    tb = Testbed(scheduler=args.scheduler, seed=args.seed,
                 sched_config=SchedulerConfig(work_conserving=False),
                 faults=_parse_faults(args.faults))
    timeline = TimelineCollector(tb.trace, tb.sim)
    tb.add_domain0()
    tb.add_vm("V1", weight=weight_for_rate(args.rate), workload=factory())
    ok = tb.run_until_workloads_done(
        ["V1"], deadline_cycles=units.seconds(600))
    if not ok:
        print("run did not finish within the deadline", file=sys.stderr)
        return 1
    timeline.close()
    print(f"runtime: {units.to_seconds(tb.guests['V1'].finished_at):.3f} s")
    print(f"co-online fraction (all 4 VCPUs simultaneously): "
          f"{timeline.co_online_fraction('V1', parties=4):.3f}\n")
    print(snapshot(tb.guests["V1"]).render())
    if tb.faults is not None:
        print(f"fault injections: {tb.faults.stats()}")
    if args.plot:
        window = min(tb.sim.now, units.ms(200))
        print()
        print(timeline.gantt(tb.sim.now - window, tb.sim.now,
                             pcpus=range(len(tb.machine))))
    return 0


def cmd_sweep(args) -> int:
    """``repro sweep``: the paper-rate sweep across schedulers.

    The whole (rate x scheduler) grid plus the rate-1.0 base run is one
    cell batch, so ``--jobs`` parallelises it and reruns are cache hits.
    """
    from repro.experiments.runner import SingleVmResult
    from repro.parallel import run_cells, single_vm_cell

    wl = _workload_spec(args.workload, args.scale)
    faults = _parse_faults(args.faults)
    scheds: List[str] = args.schedulers.split(",")
    for s in scheds:
        if s not in SCHEDULERS:
            raise SystemExit(f"unknown scheduler {s!r}")
    base_spec = single_vm_cell(wl, scheduler=scheds[0], online_rate=1.0,
                               seed=args.seed, faults=faults)
    grid = {(rate, sched): single_vm_cell(wl, scheduler=sched,
                                          online_rate=rate, seed=args.seed,
                                          faults=faults)
            for rate in PAPER_RATES for sched in scheds}
    results = run_cells([base_spec, *grid.values()])

    def runtime(spec) -> float:
        r = results.value(spec)
        assert isinstance(r, SingleVmResult)
        return r.runtime_seconds

    base = runtime(base_spec)
    table = Table(["rate_%", "ideal"] + [f"{s}_sd" for s in scheds],
                  title=f"{args.workload} slowdown sweep")
    for rate in PAPER_RATES:
        row = [round(rate * 100, 1), ideal_slowdown(rate)]
        for sched in scheds:
            row.append(runtime(grid[(rate, sched)]) / base)
        table.add_row(*row)
    print(table)
    return 0


def cmd_specjbb(args) -> int:
    """``repro specjbb``: warehouse sweep at one online rate, batched
    as one (warehouse x scheduler) cell grid over the fabric."""
    from repro.experiments.runner import SpecJbbResult
    from repro.parallel import run_cells, specjbb_cell

    scheds = args.schedulers.split(",")
    faults = _parse_faults(args.faults)
    warehouses = range(1, args.max_warehouses + 1)
    grid = {(w, sched): specjbb_cell(
                w, scheduler=sched, online_rate=args.rate,
                window_cycles=units.ms(args.window_ms), seed=args.seed,
                faults=faults)
            for w in warehouses for sched in scheds}
    results = run_cells(list(grid.values()))
    table = Table(["warehouses"] + scheds,
                  title=f"SPECjbb bops at rate {args.rate:.3f}")
    for w in warehouses:
        row: List[object] = [w]
        for sched in scheds:
            r = results.value(grid[(w, sched)])
            assert isinstance(r, SpecJbbResult)
            row.append(r.bops)
        table.add_row(*row)
    print(table)
    return 0


def cmd_robustness(args) -> int:
    """``repro robustness``: the fault-injection degradation matrix."""
    from repro.errors import ConfigurationError
    from repro.experiments.robustness import (FAULT_CLASSES, QUICK_CLASSES,
                                              robustness_report)

    if args.list_classes:
        width = max(len(n) for n in FAULT_CLASSES)
        for name, spec in FAULT_CLASSES.items():
            print(f"{name:<{width}}  {spec.describe() or '(pristine)'}")
        return 0
    scheds = args.schedulers.split(",")
    for s in scheds:
        if s not in SCHEDULERS:
            raise SystemExit(f"unknown scheduler {s!r}")
    if args.classes:
        classes: Optional[Sequence[str]] = args.classes.split(",")
    elif args.quick:
        classes = QUICK_CLASSES
    else:
        classes = None  # the full matrix
    scale = args.scale if args.scale is not None \
        else (0.3 if args.quick else 0.6)
    try:
        report = robustness_report(
            workload=args.workload.upper(), scale=scale, rate=args.rate,
            seeds=tuple(args.seeds), schedulers=scheds, classes=classes,
            fairness=not args.no_fairness)
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    return 0


def cmd_conform(args) -> int:
    """``repro conform``: the differential conformance suite.

    Default mode fuzzes ``--scenarios`` deterministic scenarios and runs
    each under every scheduler in ``--schedulers``, judging the oracle's
    cross-scheduler invariants and metamorphic relations.  Two exclusive
    side modes skip the corpus: ``--golden check|update`` replays the
    pinned golden-trace scenarios, and ``--replay ARTIFACT`` re-runs a
    shrunk failure artifact.
    """
    from repro.conformance import conform
    from repro.conformance.golden import check as golden_check
    from repro.conformance.golden import update as golden_update
    from repro.conformance.shrink import (replay_artifact, save_artifact,
                                          shrink)
    from repro.errors import ConfigurationError

    if args.golden and args.replay:
        raise SystemExit("--golden and --replay are exclusive modes")

    if args.golden:
        if args.golden == "update":
            for path in golden_update(args.golden_dir):
                print(f"wrote {path}")
            return 0
        drifts = golden_check(args.golden_dir)
        for d in drifts:
            print(d.render())
        if drifts:
            return 1
        print("golden traces match")
        return 0

    if args.replay:
        try:
            outcome = replay_artifact(args.replay)
        except ConfigurationError as exc:
            raise SystemExit(str(exc))
        print(outcome.render())
        return 0 if outcome.reproduced else 1

    schedulers = tuple(args.schedulers.split(","))
    try:
        report = conform(scenarios=args.scenarios, seed=args.seed,
                         schedulers=schedulers,
                         metamorphic_every=args.metamorphic_every)
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    if args.fingerprints:
        import json as _json
        import pathlib
        doc = {"seed": report.seed, "count": report.count,
               "schedulers": list(report.schedulers),
               "combined": report.combined_fingerprint(),
               "scenarios": report.fingerprints()}
        pathlib.Path(args.fingerprints).write_text(
            _json.dumps(doc, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote fingerprints to {args.fingerprints}")
    if report.ok:
        return 0
    if args.shrink:
        first = next(v for v in report.verdicts if not v.ok)
        print(f"\nshrinking first failing scenario "
              f"#{first.scenario.index} ...")
        result = shrink(first.scenario, schedulers)
        print(result.render())
        if args.artifact:
            path = save_artifact(result, args.artifact)
            print(f"wrote replay artifact {path} "
                  f"(python -m repro conform --replay {path})")
    return 1


def cmd_chaos(args) -> int:
    """``repro chaos``: the self-proving driver-level chaos demo.

    Three phases over one small cell batch, in scratch caches under
    ``<cache>/chaos-demo/``: (1) a clean serial reference run; (2) a
    supervised parallel run under injected worker kills/stalls/errors —
    merged results must be bit-identical to the reference; (3) a warm
    rerun after deterministically corrupting cache entries — corrupt
    entries must be quarantined and re-executed, fingerprints unchanged.
    Any fingerprint divergence raises
    :class:`~repro.errors.ExecutionError` (exit code 3).
    """
    import os as _os
    import pathlib

    from repro import parallel
    from repro.errors import ExecutionError
    from repro.parallel import ResultCache, run_cells, single_vm_cell
    from repro.parallel.chaos import ChaosSpec
    from repro.parallel.supervisor import (SupervisorPolicy,
                                           set_default_chaos,
                                           set_default_resume)

    # The demo controls its own injection per phase: the fabric-wide
    # defaults installed from --chaos/--resume must not leak into the
    # clean reference run (main() restores them afterwards).
    set_default_chaos(None)
    set_default_resume(False)

    chaos = _parse_chaos(args.chaos)
    if chaos is None:
        chaos = ChaosSpec(seed=7, kill_rate=0.3, stall_rate=0.2,
                          stall_s=0.05, error_rate=0.3, corrupt_rate=0.6)
    policy = SupervisorPolicy(
        cell_timeout_s=args.cell_timeout,
        batch_deadline_s=args.batch_deadline,
        max_retries=args.retries if args.retries is not None else 3,
        max_pool_rebuilds=10)

    wl = _workload_spec(args.workload, args.scale)
    scheds = args.schedulers.split(",")
    for s in scheds:
        if s not in SCHEDULERS:
            raise SystemExit(f"unknown scheduler {s!r}")
    specs = [single_vm_cell(wl, scheduler=sched, online_rate=rate,
                            seed=seed)
             for sched in scheds for rate in (1.0, 0.4)
             for seed in args.seeds]

    scratch = pathlib.Path(
        args.cache_dir or _os.environ.get("REPRO_CACHE_DIR")
        or parallel.DEFAULT_CACHE_DIR) / "chaos-demo"
    clean_cache = ResultCache(scratch / "clean")
    clean_cache.clear()
    chaos_cache = ResultCache(scratch / "chaos")
    chaos_cache.clear()

    print(f"chaos spec: {chaos.describe()} (seed {chaos.seed})")
    print(f"batch: {len(specs)} cell(s), {args.workload} "
          f"scale {args.scale:g}, schedulers {','.join(scheds)}")

    ref = run_cells(specs, jobs=1, cache=clean_cache,
                    policy=SupervisorPolicy())
    ref_fp = ref.combined_fingerprint()
    print(f"[1/3] clean serial reference        : {ref_fp}")

    jobs = args.jobs if args.jobs is not None else "2"
    cold = run_cells(specs, jobs=jobs, cache=chaos_cache,
                     policy=policy, chaos=chaos)
    cold.raise_if_failed()
    cold_fp = cold.combined_fingerprint()
    print(f"[2/3] supervised run under chaos    : {cold_fp}")
    if cold.supervisor is not None:
        print(f"      {cold.supervisor.describe()}")

    warm = run_cells(specs, jobs=jobs, cache=chaos_cache,
                     policy=policy, chaos=chaos)
    warm.raise_if_failed()
    warm_fp = warm.combined_fingerprint()
    quarantined = chaos_cache.quarantined
    print(f"[3/3] warm rerun + cache corruption : {warm_fp}")
    print(f"      {quarantined} corrupt cache entr"
          f"{'y' if quarantined == 1 else 'ies'} quarantined and "
          f"re-executed")

    if cold_fp != ref_fp or warm_fp != ref_fp:
        raise ExecutionError(
            f"chaos determinism gate FAILED: clean {ref_fp}, "
            f"cold chaos {cold_fp}, warm chaos {warm_fp}")
    print(f"chaos determinism gate OK: results bit-identical to the "
          f"clean run under {chaos.describe()}")
    return 0


def _lint_default_root():
    import pathlib
    src = pathlib.Path("src/repro")
    if src.is_dir():
        return src
    import repro
    return pathlib.Path(repro.__file__).parent


def _lint_emit(text: str, output) -> None:
    if output:
        import pathlib
        pathlib.Path(output).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {output}")
    else:
        print(text)


def _check_waiver_budget(pragmas_used: int, max_waivers) -> int:
    if max_waivers is not None and pragmas_used > max_waivers:
        print(f"lint: {pragmas_used} pragma waiver(s) exceed the "
              f"--max-waivers budget of {max_waivers}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint_interproc(args, rules) -> int:
    """The ``--interprocedural`` arm: whole-program analysis with the
    SARIF/baseline workflow."""
    import json as _json
    import pathlib

    from repro.analysis.engine import (analyze, load_baseline,
                                       write_baseline)
    from repro.analysis.sarif import render_sarif

    if len(args.paths) > 1:
        print("lint error: --interprocedural takes one package root",
              file=sys.stderr)
        return 2
    root = pathlib.Path(args.paths[0]) if args.paths \
        else _lint_default_root()
    if not root.is_dir():
        print(f"lint error: {root} is not a package directory",
              file=sys.stderr)
        return 2

    baseline_path = pathlib.Path(args.baseline)
    baseline_doc = None
    if not args.no_baseline and not args.update_baseline \
            and baseline_path.exists():
        try:
            baseline_doc = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"lint error: {exc}", file=sys.stderr)
            return 2

    changed = [p for p in args.diff.split(",") if p.strip()] \
        if args.diff is not None else None
    try:
        report, project, sources = analyze(
            root, rules=rules, baseline=baseline_doc,
            changed_files=changed, assume_sim=args.assume_sim)
    except (ValueError, OSError, SyntaxError) as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        out = write_baseline(report.violations, sources, baseline_path)
        print(f"wrote {out} ({len(report.violations)} grandfathered "
              f"finding(s))")
        return 0

    if args.format == "sarif":
        _lint_emit(render_sarif(report, sources, project), args.output)
    elif args.format == "json":
        doc = {
            "violations": [v.to_dict() for v in report.violations],
            "new": len(report.new),
            "grandfathered": len(report.grandfathered),
            "stale_baseline": len(report.stale_baseline),
            "files_checked": report.files_checked,
            "pragmas_used": report.pragmas_used,
            "waivers_by_rule": report.waivers_by_rule,
            "interprocedural": True,
            "ok": report.ok,
        }
        _lint_emit(_json.dumps(doc, indent=2, sort_keys=True),
                   args.output)
    else:
        lines = [v.render() for v in report.new]
        lines.append(
            f"{len(report.violations)} finding(s) "
            f"({len(report.new)} new, {len(report.grandfathered)} "
            f"grandfathered) in {report.files_checked} file(s), "
            f"{report.pragmas_used} pragma waiver(s)")
        if report.stale_baseline and changed is None:
            lines.append(
                f"warning: {len(report.stale_baseline)} stale baseline "
                f"entr(y/ies) no longer occur — prune {baseline_path}")
        _lint_emit("\n".join(lines), args.output)

    budget_rc = _check_waiver_budget(report.pragmas_used,
                                     args.max_waivers)
    return 1 if (report.new or budget_rc) else 0


def cmd_lint(args) -> int:
    """``repro lint``: run simlint over the source tree (default) or the
    given paths; exit 1 if violations are found.

    ``--interprocedural`` switches to the whole-program engine
    (:mod:`repro.analysis.engine`) with the three cross-function rule
    families, SARIF output and the ``analysis-baseline.json``
    suppression workflow."""
    import pathlib

    from repro import analysis

    if args.list_rules:
        from repro.analysis.rules_interproc import INTERPROC_RULES
        merged = dict(analysis.RULES)
        merged.update({f"{r} [interprocedural]": d
                       for r, d in INTERPROC_RULES.items()})
        width = max(len(r) for r in merged)
        for rule, desc in merged.items():
            print(f"{rule:<{width}}  {desc}")
        return 0
    rules = args.rules.split(",") if args.rules else None
    if args.format == "sarif" and not args.interprocedural:
        print("lint error: --format sarif requires --interprocedural",
              file=sys.stderr)
        return 2
    if args.interprocedural:
        return _cmd_lint_interproc(args, rules)
    if args.paths:
        paths = [pathlib.Path(p) for p in args.paths]
    else:
        paths = [_lint_default_root()]
    try:
        report = analysis.lint_paths(paths, assume_sim=args.assume_sim,
                                     rules=rules)
    except (ValueError, OSError, SyntaxError) as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        _lint_emit(analysis.render_json(report), args.output)
    else:
        _lint_emit(analysis.render_text(report), args.output)
    budget_rc = _check_waiver_budget(report.pragmas_used,
                                     args.max_waivers)
    return 1 if (not report.ok or budget_rc) else 0


def cmd_perf(args) -> int:
    """``repro perf``: run the performance regression harness.

    Emits ``BENCH_<name>.json`` per benchmark; ``--check`` gates
    events/sec (host-normalised) and simulation fingerprints against a
    committed baseline, ``--update-baseline`` records a new one.
    """
    import pathlib

    from repro import perf
    from repro.errors import ConfigurationError

    if args.list:
        for name in perf.registry:
            print(name)
        return 0
    names = args.only.split(",") if args.only else None
    mode = "quick" if args.quick else "full"
    config = perf.run_config()
    print("run config: " + ", ".join(f"{k}={'on' if v else 'off'}"
                                     for k, v in config.items()))
    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        results = perf.run_benchmarks(
            names, quick=args.quick,
            progress=lambda n: print(f"running {n} [{mode}] ...", flush=True))
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    out_dir = pathlib.Path(args.out)
    if profiler is not None:
        import pstats

        profiler.disable()
        out_dir.mkdir(parents=True, exist_ok=True)
        pstats_path = out_dir / "profile.pstats"
        profiler.dump_stats(pstats_path)
        print(f"\nprofile (top 20 by cumulative time) -> {pstats_path}")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(20)
    for r in results:
        path = perf.write_result(r, out_dir)
        print(f"  {r.name}: {r.events_per_s:,.0f} events/s "
              f"({r.events} events in {r.wall_s:.3f}s, "
              f"peak heap {r.peak_heap_entries}) -> {path}")
    if args.trajectory:
        import json

        base_path = pathlib.Path(args.check or "benchmarks/perf_baseline.json")
        before = perf.load_baseline(base_path).get("benches", {})
        traj = {}
        for r in results:
            b = before.get(r.name, {})
            prev = float(b.get("events_per_s", 0.0))
            traj[r.name] = {
                "before_events_per_s": round(prev, 1),
                "after_events_per_s": round(r.events_per_s, 1),
                "speedup": round(r.events_per_s / prev, 3) if prev else None,
            }
        doc = {"meta": {"mode": mode, "config": config,
                        "baseline": str(base_path)},
               "benches": traj}
        traj_path = pathlib.Path(args.trajectory)
        traj_path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote perf trajectory {traj_path}")
    status = 0
    if args.update_baseline or args.check:
        calibration = perf.calibrate()
        print(f"host calibration: {calibration:,.0f} loop-iters/s")
    if args.update_baseline:
        perf.write_baseline(results, pathlib.Path(args.update_baseline),
                            args.quick, calibration)
        print(f"wrote baseline {args.update_baseline}")
    if args.check:
        baseline = perf.load_baseline(pathlib.Path(args.check))
        base_mode = baseline.get("meta", {}).get("mode")
        if base_mode != mode:
            print(f"baseline was recorded in {base_mode!r} mode but this "
                  f"run is {mode!r}; rerun with matching --quick",
                  file=sys.stderr)
            return 2
        failures = perf.check_against_baseline(
            results, baseline, calibration, threshold=args.fail_threshold)
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            status = 1
        else:
            print(f"perf check OK against {args.check} "
                  f"(threshold {args.fail_threshold:.0%})")
    return status


# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for shell-completion tools)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="ASMan (HPDC'11) reproduction: run figures and "
                    "scenarios on the simulated testbed.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  success\n"
            "  1  run failed (violations, regressions, drift)\n"
            "  2  usage or configuration error\n"
            "  3  ExecutionError: supervised cells failed "
            "(exhausted retries, crashes)\n"
            "  4  CellTimeoutError: cells exceeded their wall-clock "
            "budgets\n"
            "  5  CacheIntegrityError: result-cache entries failed "
            "checksum verification\n"))
    sub = p.add_subparsers(dest="command", required=True)

    #: Shared by every simulation-running subcommand.
    sim_common = argparse.ArgumentParser(add_help=False)
    sim_common.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime scheduler sanitizer (invariant checks "
             "after every scheduling decision; slower)")

    #: Parallel-fabric options, shared by every cell-batched subcommand.
    fabric_common = argparse.ArgumentParser(add_help=False)
    fabric_common.add_argument(
        "--jobs", metavar="N|auto", default=None,
        help="fan independent scenario cells out over N worker "
             "processes ('auto' = one per CPU; default: $REPRO_JOBS or 1)")
    fabric_common.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed result cache")
    fabric_common.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result cache directory (default .repro-cache or "
             "$REPRO_CACHE_DIR)")
    fabric_common.add_argument(
        "--cell-timeout", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget per cell attempt (pool mode; overruns "
             "become structured timeout failures, not lost batches)")
    fabric_common.add_argument(
        "--batch-deadline", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget for the whole batch")
    fabric_common.add_argument(
        "--retries", type=int, metavar="N", default=None,
        help="failed attempts allowed per cell beyond the first "
             "(default 2); backoff is deterministic per cell key")
    fabric_common.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted batch from its journal "
             "(.repro-cache/journal/): only missing cells re-execute")
    fabric_common.add_argument(
        "--no-supervise", action="store_true",
        help="bypass the supervisor: bare fan-out, no crash recovery, "
             "timeouts, retry, or journaling")
    fabric_common.add_argument(
        "--chaos", metavar="KEY=VALUE,...", default=None,
        help="inject deterministic driver-level faults into this batch "
             "(worker kills, stalls, cache corruption; see `repro "
             "chaos --help`)")

    #: Fault injection, shared by the scenario subcommands.
    faults_common = argparse.ArgumentParser(add_help=False)
    faults_common.add_argument(
        "--faults", metavar="KEY=VALUE,...", default=None,
        help="inject a deterministic fault scenario, e.g. "
             "'hypercall_loss=0.5,monitor_mode=stuck_low' "
             "(see docs/robustness.md)")

    sub.add_parser("list", help="list figures/workloads/schedulers") \
        .set_defaults(func=cmd_list)

    fp = sub.add_parser("figure", help="rerun one paper figure",
                        parents=[sim_common, fabric_common])
    fp.add_argument("name", help="e.g. fig07 (see `repro list`)")
    fp.add_argument("--scale", type=float, default=None,
                    help="workload scale factor")
    fp.add_argument("--seeds", type=int, nargs="*", default=None)
    fp.add_argument("--plot", action="store_true",
                    help="also render an ASCII plot")
    fp.add_argument("--json", metavar="PATH", help="export JSON")
    fp.add_argument("--csv", metavar="PATH", help="export CSV")
    fp.set_defaults(func=cmd_figure)

    rp = sub.add_parser("run", help="one single-VM scenario",
                        parents=[sim_common, fabric_common, faults_common])
    rp.add_argument("--workload", default="LU")
    rp.add_argument("--scheduler", default="credit", choices=SCHEDULERS)
    rp.add_argument("--rate", type=float, default=0.4,
                    help="VCPU online rate in (0, 1]")
    rp.add_argument("--scale", type=float, default=0.4)
    rp.add_argument("--seed", type=int, default=1)
    rp.add_argument("--plot", action="store_true")
    rp.add_argument("--verbose", action="store_true",
                    help="guest introspection + co-online fraction")
    rp.set_defaults(func=cmd_run)

    sp = sub.add_parser("sweep", help="online-rate sweep across schedulers",
                        parents=[sim_common, fabric_common, faults_common])
    sp.add_argument("--workload", default="LU")
    sp.add_argument("--schedulers", default="credit,asman")
    sp.add_argument("--scale", type=float, default=0.4)
    sp.add_argument("--seed", type=int, default=1)
    sp.set_defaults(func=cmd_sweep)

    jp = sub.add_parser("specjbb", help="SPECjbb warehouse sweep",
                        parents=[sim_common, fabric_common, faults_common])
    jp.add_argument("--rate", type=float, default=0.4)
    jp.add_argument("--max-warehouses", type=int, default=8)
    jp.add_argument("--window-ms", type=float, default=1000.0)
    jp.add_argument("--schedulers", default="credit,asman")
    jp.add_argument("--seed", type=int, default=1)
    jp.set_defaults(func=cmd_specjbb)

    bp = sub.add_parser("robustness",
                        help="fault-injection degradation matrix",
                        parents=[sim_common, fabric_common])
    bp.add_argument("--workload", default="LU")
    bp.add_argument("--schedulers", default="credit,con,asman")
    bp.add_argument("--rate", type=float, default=2.0 / 9.0,
                    help="VCPU online rate (default: the paper's 22.2%%)")
    bp.add_argument("--scale", type=float, default=None,
                    help="workload scale (default 0.6, or 0.3 with --quick)")
    bp.add_argument("--seeds", type=int, nargs="*", default=(1,))
    bp.add_argument("--classes", metavar="NAMES", default=None,
                    help="comma-separated fault classes "
                         "(see --list-classes; default: all)")
    bp.add_argument("--quick", action="store_true",
                    help="smoke subset of classes at a smaller scale")
    bp.add_argument("--no-fairness", action="store_true",
                    help="skip the two-VM fairness cells (faster)")
    bp.add_argument("--list-classes", action="store_true",
                    help="list fault classes and exit")
    bp.set_defaults(func=cmd_robustness)

    pp = sub.add_parser("perf", help="performance regression harness",
                        parents=[sim_common, fabric_common])
    pp.add_argument("--quick", action="store_true",
                    help="smaller iteration counts (CI smoke mode)")
    pp.add_argument("--only", metavar="NAMES",
                    help="comma-separated benchmark subset")
    pp.add_argument("--out", metavar="DIR", default="benchmarks/results/perf",
                    help="directory for BENCH_<name>.json files")
    pp.add_argument("--check", metavar="BASELINE",
                    help="fail on events/sec regression vs this baseline")
    pp.add_argument("--fail-threshold", type=float, default=0.30,
                    help="allowed events/sec drop fraction (default 0.30)")
    pp.add_argument("--update-baseline", metavar="PATH",
                    help="write this run as the new baseline")
    pp.add_argument("--profile", action="store_true",
                    help="cProfile the run: print the top-20 cumulative "
                         "hotspots and dump profile.pstats under --out")
    pp.add_argument("--trajectory", metavar="PATH",
                    help="write a before/after/speedup record per bench "
                         "vs the --check baseline (default: the "
                         "committed benchmarks/perf_baseline.json)")
    pp.add_argument("--list", action="store_true",
                    help="list benchmark names and exit")
    pp.set_defaults(func=cmd_perf)

    cp = sub.add_parser("conform",
                        help="differential conformance suite "
                             "(fuzzed scenarios, oracle, golden traces)",
                        parents=[sim_common, fabric_common])
    cp.add_argument("--scenarios", type=int, default=200,
                    help="corpus size (default 200)")
    cp.add_argument("--seed", type=int, default=1,
                    help="corpus seed (default 1)")
    cp.add_argument("--schedulers", default="credit,relaxed,asman",
                    help="comma-separated schedulers to cross-check")
    cp.add_argument("--metamorphic-every", type=int, default=10,
                    metavar="N",
                    help="run metamorphic twin cells for every Nth "
                         "scenario (0 disables; default 10)")
    cp.add_argument("--fingerprints", metavar="PATH",
                    help="write per-scenario fingerprints as JSON "
                         "(for cross-job-count determinism checks)")
    cp.add_argument("--shrink", action="store_true",
                    help="on failure, minimise the first failing "
                         "scenario (serial; may take a while)")
    cp.add_argument("--artifact", metavar="PATH",
                    default="conformance_failure.json",
                    help="where --shrink writes the replay artifact")
    cp.add_argument("--replay", metavar="PATH",
                    help="re-run a shrink artifact and verify its "
                         "violation signature reproduces")
    cp.add_argument("--golden", choices=("check", "update"),
                    help="golden-trace mode: compare against (or "
                         "regenerate) the checked-in trace fixtures")
    cp.add_argument("--golden-dir", metavar="DIR", default=None,
                    help="fixture directory (default tests/fixtures/golden)")
    cp.set_defaults(func=cmd_conform)

    xp = sub.add_parser(
        "chaos",
        help="chaos harness: prove the supervised fabric survives "
             "worker kills, stalls and cache corruption with "
             "bit-identical results",
        parents=[sim_common, fabric_common])
    xp.add_argument("--workload", default="LU")
    xp.add_argument("--schedulers", default="credit,asman")
    xp.add_argument("--scale", type=float, default=0.15)
    xp.add_argument("--seeds", type=int, nargs="*", default=(1,))
    xp.set_defaults(func=cmd_chaos)

    lp = sub.add_parser("lint", help="simlint static checker")
    lp.add_argument("paths", nargs="*",
                    help="files/directories to lint (default: src/repro; "
                         "with --interprocedural: one package root)")
    lp.add_argument("--format", choices=("text", "json", "sarif"),
                    default="text",
                    help="output format (sarif requires "
                         "--interprocedural)")
    lp.add_argument("--rules", metavar="NAMES",
                    help="comma-separated rule subset (see --list-rules)")
    lp.add_argument("--list-rules", action="store_true",
                    help="list rule names and exit")
    lp.add_argument("--assume-sim", action="store_true",
                    help="apply simulation-scoped rules to every file "
                         "regardless of its package path")
    lp.add_argument("--interprocedural", action="store_true",
                    help="whole-program analysis: call graph + taint "
                         "rule families over one package root")
    lp.add_argument("--baseline", metavar="PATH",
                    default="analysis-baseline.json",
                    help="suppression baseline for --interprocedural "
                         "(default: analysis-baseline.json; new findings "
                         "fail, grandfathered ones are counted)")
    lp.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline: every finding is 'new'")
    lp.add_argument("--update-baseline", action="store_true",
                    help="write the current findings as the new baseline "
                         "and exit 0")
    lp.add_argument("--diff", metavar="FILES",
                    help="comma-separated changed files: index the whole "
                         "project but report findings only in these")
    lp.add_argument("--max-waivers", type=int, metavar="N", default=None,
                    help="fail if more than N pragma waivers fire "
                         "(keeps the waiver pile shrinking)")
    lp.add_argument("--output", metavar="PATH",
                    help="write the report to PATH instead of stdout")
    lp.set_defaults(func=cmd_lint)
    return p


def _configure_fabric(args):
    """Install fabric defaults (worker count + cache) from CLI options.

    Returns the installed :class:`~repro.parallel.ResultCache` (or
    ``None`` for fabric-less subcommands / ``--no-cache``) so ``main``
    can print a one-line traffic summary afterwards.
    """
    if not hasattr(args, "no_cache"):
        return None  # subcommand without fabric options (list/lint)
    from repro import parallel
    from repro.parallel import supervisor
    if args.jobs is not None:
        parallel.set_default_jobs(args.jobs)

    if args.no_supervise:
        for option, name in ((args.cell_timeout, "--cell-timeout"),
                             (args.batch_deadline, "--batch-deadline"),
                             (args.retries, "--retries"),
                             (args.resume or None, "--resume"),
                             (args.chaos, "--chaos")):
            if option is not None:
                raise SystemExit(
                    f"{name} needs the supervisor; drop --no-supervise")
        supervisor.set_default_policy(None)
        supervisor.set_default_resume(False)
        supervisor.set_default_chaos(None)
    else:
        policy_kwargs = {}
        if args.cell_timeout is not None:
            policy_kwargs["cell_timeout_s"] = args.cell_timeout
        if args.batch_deadline is not None:
            policy_kwargs["batch_deadline_s"] = args.batch_deadline
        if args.retries is not None:
            policy_kwargs["max_retries"] = args.retries
        supervisor.set_default_policy(
            supervisor.SupervisorPolicy(**policy_kwargs))
        supervisor.set_default_resume(bool(args.resume))
        supervisor.set_default_chaos(_parse_chaos(args.chaos))

    if args.no_cache:
        parallel.set_default_cache(None)
        return None
    cache = parallel.get_default_cache()
    if cache is None:
        cache = parallel.ResultCache(args.cache_dir)
        parallel.set_default_cache(cache)
    return cache


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status.

    Supervision/integrity errors map to distinct exit codes (see
    ``repro --help``): 3 for :class:`~repro.errors.ExecutionError`,
    4 for :class:`~repro.errors.CellTimeoutError`, 5 for
    :class:`~repro.errors.CacheIntegrityError`, 2 for
    :class:`~repro.errors.ConfigurationError`.
    """
    from repro.errors import (CacheIntegrityError, CellTimeoutError,
                              ConfigurationError, ExecutionError)
    try:
        return _main(argv)
    except CellTimeoutError as exc:  # before ExecutionError: subclass
        print(f"timeout: {exc}", file=sys.stderr)
        return 4
    except ExecutionError as exc:
        print(f"execution failed: {exc}", file=sys.stderr)
        return 3
    except CacheIntegrityError as exc:
        print(f"cache integrity: {exc}", file=sys.stderr)
        return 5
    except ConfigurationError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2


def _main(argv: Optional[Sequence[str]]) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "sanitize", False):
        from repro import analysis
        analysis.set_sanitize(True)
    if not hasattr(args, "no_cache"):
        return int(args.func(args))
    from repro import parallel
    from repro.parallel import supervisor
    saved_jobs = parallel.get_default_jobs()
    saved_cache = parallel.get_default_cache()
    saved_policy = supervisor.get_default_policy()
    saved_resume = supervisor.get_default_resume()
    saved_chaos = supervisor.get_default_chaos()
    cache = _configure_fabric(args)
    try:
        status = args.func(args)
        # Stderr, so piping stdout (series, tables, JSON) stays
        # byte-stable whether the run was cold or warm.
        if cache is not None and (cache.hits or cache.misses
                                  or cache.stores):
            print(cache.describe(), file=sys.stderr)
        report = supervisor.get_last_report()
        if report is not None and (report.retried or report.timeouts
                                   or report.pool_rebuilds
                                   or report.failures or report.resumed
                                   or report.degraded):
            print(report.describe(), file=sys.stderr)
        return int(status)
    finally:
        # main() is library-callable (tests, scripts): leave the
        # process-wide fabric defaults the way we found them.
        parallel.set_default_jobs(saved_jobs)
        parallel.set_default_cache(saved_cache)
        supervisor.set_default_policy(saved_policy)
        supervisor.set_default_resume(saved_resume)
        supervisor.set_default_chaos(saved_chaos)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
