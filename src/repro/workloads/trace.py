"""Trace-driven workloads: replay an application description from JSON.

Users who want to model *their* application without writing Python can
describe each thread as a list of op records and load it with
:func:`load_trace` / :class:`TraceWorkload`.  The format also serves as
an interchange target: :func:`dump_trace` serialises any op list, so
recorded or generated programs can be stored alongside experiment
configurations.

Format (JSON)::

    {
      "name": "myapp",
      "threads": [
        {"vcpu": 0, "ops": [
            {"op": "compute", "cycles": 1000000},
            {"op": "critical", "lock": "L", "hold": 8000},
            {"op": "barrier", "barrier": "B"},
            {"op": "flag_set", "flag": "F", "value": 1},
            {"op": "flag_wait", "flag": "F", "value": 1},
            {"op": "sem_down", "sem": "S"},
            {"op": "sem_up", "sem": "S"},
            {"op": "sleep", "cycles": 50000}
        ]},
        ...
      ],
      "barriers": {"B": 2},
      "repeat": 3
    }

``barriers`` declares party counts; ``repeat`` loops every thread's op
list.  Unknown op kinds or missing fields raise
:class:`~repro.errors.WorkloadError` at load time, not at run time.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.ops import (BarrierOp, Compute, Critical, FlagSet, FlagWait,
                             Op, SemDown, SemUp, Sleep)
from repro.workloads.base import Workload

_DECODERS = {
    "compute": lambda r: Compute(int(r["cycles"])),
    "critical": lambda r: Critical(str(r["lock"]), int(r["hold"])),
    "barrier": lambda r: BarrierOp(str(r["barrier"])),
    "flag_set": lambda r: FlagSet(str(r["flag"]), int(r["value"])),
    "flag_wait": lambda r: FlagWait(str(r["flag"]), int(r["value"])),
    "sem_down": lambda r: SemDown(str(r["sem"])),
    "sem_up": lambda r: SemUp(str(r["sem"])),
    "sleep": lambda r: Sleep(int(r["cycles"])),
}

_ENCODERS = {
    Compute: lambda op: {"op": "compute", "cycles": op.cycles},
    Critical: lambda op: {"op": "critical", "lock": op.lock,
                          "hold": op.hold},
    BarrierOp: lambda op: {"op": "barrier", "barrier": op.barrier},
    FlagSet: lambda op: {"op": "flag_set", "flag": op.flag,
                         "value": op.value},
    FlagWait: lambda op: {"op": "flag_wait", "flag": op.flag,
                          "value": op.value},
    SemDown: lambda op: {"op": "sem_down", "sem": op.sem},
    SemUp: lambda op: {"op": "sem_up", "sem": op.sem},
    Sleep: lambda op: {"op": "sleep", "cycles": op.cycles},
}


def decode_op(record: Dict) -> Op:
    """One JSON record -> one guest op (validated)."""
    kind = record.get("op")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise WorkloadError(
            f"unknown op kind {kind!r}; known: {sorted(_DECODERS)}")
    try:
        return decoder(record)
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"bad {kind} record {record!r}: {exc}") from exc


def encode_op(op: Op) -> Dict:
    """One guest op -> its JSON record (inverse of decode_op)."""
    encoder = _ENCODERS.get(type(op))
    if encoder is None:
        raise WorkloadError(f"cannot encode op {op!r}")
    return encoder(op)


def dump_trace(name: str, threads: Sequence[Sequence[Op]],
               barriers: Dict[str, int] | None = None,
               repeat: int = 1, indent: int = 2) -> str:
    """Serialise thread op-lists to the JSON trace format."""
    payload = {
        "name": name,
        "threads": [{"vcpu": i, "ops": [encode_op(op) for op in ops]}
                    for i, ops in enumerate(threads)],
        "barriers": dict(barriers or {}),
        "repeat": repeat,
    }
    return json.dumps(payload, indent=indent)


class TraceWorkload(Workload):
    """A workload materialised from a parsed trace document."""

    def __init__(self, doc: Dict) -> None:
        repeat = int(doc.get("repeat", 1))
        super().__init__(rounds=repeat)
        name = doc.get("name")
        if not name:
            raise WorkloadError("trace needs a 'name'")
        self.name = f"trace.{name}"
        threads = doc.get("threads")
        if not threads:
            raise WorkloadError("trace needs at least one thread")
        self._threads: List[Dict] = []
        for i, t in enumerate(threads):
            ops = [decode_op(r) for r in t.get("ops", [])]
            if not ops:
                raise WorkloadError(f"thread {i} has no ops")
            self._threads.append({"vcpu": t.get("vcpu"), "ops": ops})
        self._barriers = {str(k): int(v)
                          for k, v in (doc.get("barriers") or {}).items()}
        self._expected_threads = len(self._threads)

    # ------------------------------------------------------------------ #
    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        self._mark_installed(kernel)
        for bname, parties in self._barriers.items():
            kernel.barrier(bname, parties)
        # Validate barrier references before spawning anything.
        for t in self._threads:
            for op in t["ops"]:
                if isinstance(op, BarrierOp) and \
                        op.barrier not in self._barriers:
                    raise WorkloadError(
                        f"barrier {op.barrier!r} used but not declared")
        for i, t in enumerate(self._threads):
            kernel.spawn(f"{self.name}.t{i}", self._program(i, t["ops"]),
                         vcpu_index=t["vcpu"])

    def _program(self, thread: int, ops: List[Op]) -> Iterator[Op]:
        for _ in range(self.rounds):
            yield from ops
            self._note_round(thread)

    @property
    def num_threads(self) -> int:
        return len(self._threads)


def load_trace(text: str) -> TraceWorkload:
    """Parse a JSON trace document into an installable workload."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"invalid trace JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise WorkloadError("trace root must be an object")
    return TraceWorkload(doc)


def load_trace_file(path) -> TraceWorkload:
    """Read and parse a JSON trace file."""
    import pathlib
    return load_trace(pathlib.Path(path).read_text())
