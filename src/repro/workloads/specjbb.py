"""A SPECjbb2005 model: warehouse threads driving Java transactions.

SPECjbb2005 emulates a 3-tier business system entirely inside one JVM
(paper Section 5.1): W warehouse threads each run a transaction mix with
no I/O.  What matters to the VMM scheduler is:

* warehouses are *mostly independent* — throughput scales with warehouses
  until the VCPU count is reached, then flattens (Figure 10 a–c);
* the JVM serialises allocation/GC safepoints through shared locks, so a
  small fraction of each transaction touches a global "jvm" spinlock —
  under low online rates that lock suffers holder preemption and Credit
  loses throughput that ASMan recovers (up to ~26%, Figure 10).

Warehouse programs are infinite; the experiment runner simulates a fixed
measurement window and reads :meth:`SpecJbbWorkload.bops`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro import units
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute, Critical, Op
from repro.workloads.base import Workload, jittered


class SpecJbbWorkload(Workload):
    """W warehouses of synthetic Java transactions."""

    def __init__(self, warehouses: int,
                 txn_cycles: int = units.us(500),
                 jvm_lock_period: int = 8,
                 jvm_lock_hold: int = units.us(4),
                 jitter_cv: float = 0.3) -> None:
        super().__init__()
        if warehouses < 1:
            raise WorkloadError("need at least one warehouse")
        if jvm_lock_period < 1:
            raise WorkloadError("jvm_lock_period must be >= 1")
        self.name = f"specjbb.w{warehouses}"
        self.warehouses = warehouses
        self.txn_cycles = txn_cycles
        self.jvm_lock_period = jvm_lock_period
        self.jvm_lock_hold = jvm_lock_hold
        self.jitter_cv = jitter_cv
        #: Completed transactions per warehouse (live counters).
        self.transactions: List[int] = [0] * warehouses

    # ------------------------------------------------------------------ #
    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        self._mark_installed(kernel)
        kernel.lock(f"{self.name}.jvm")
        for w in range(self.warehouses):
            wrng = np.random.default_rng(rng.integers(0, 2**63))
            # Warehouses are spread round-robin over VCPUs by spawn().
            kernel.spawn(f"{self.name}.wh{w}", self._program(w, wrng))

    def _program(self, w: int, rng: np.random.Generator) -> Iterator[Op]:
        n = 0
        while True:  # runs until the measurement window closes
            yield Compute(jittered(rng, self.txn_cycles, self.jitter_cv))
            n += 1
            self.transactions[w] = n
            if n % self.jvm_lock_period == 0:
                # Allocation slow path / safepoint: global JVM lock.
                yield Critical(f"{self.name}.jvm", self.jvm_lock_hold)

    # ------------------------------------------------------------------ #
    def total_transactions(self) -> int:
        return sum(self.transactions)

    def bops(self, window_cycles: int) -> float:
        """Business operations per second over the measurement window."""
        if window_cycles <= 0:
            raise WorkloadError("window must be positive")
        return self.total_transactions() / units.to_seconds(window_cycles)

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(warehouses=self.warehouses,
                 txn_cycles=self.txn_cycles)
        return d
