"""Workload abstraction and common helpers.

A :class:`Workload` knows how to *install* itself into a guest kernel:
declare the synchronisation objects it needs and spawn its task programs.
Everything after that is emergent from the guest/VMM interaction — the
workload never talks to the scheduler.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel


def jittered(rng: np.random.Generator, mean: float, cv: float) -> int:
    """Draw a positive work amount with the given mean and coefficient of
    variation, using a gamma distribution (mean-preserving, right-skewed —
    a reasonable model for compute-segment lengths).

    ``cv = 0`` returns the mean exactly, making programs deterministic.
    """
    if mean <= 0:
        return 0
    if cv <= 0:
        return int(mean)
    shape = 1.0 / (cv * cv)
    scale = mean * cv * cv
    return max(1, int(rng.gamma(shape, scale)))


class Workload(abc.ABC):
    """Base class for installable workloads.

    Workloads may run for several *rounds* (repetitions of the whole
    program).  The paper's multi-VM experiments run every benchmark
    "repeatedly with a batch program" and average the first rounds' run
    times while all neighbours are still loaded (Section 5.3); the round
    bookkeeping here supports exactly that measurement.
    """

    #: Human-readable name, set by subclasses.
    name: str = "workload"

    def __init__(self, rounds: int = 1) -> None:
        if rounds < 1:
            raise WorkloadError("rounds must be >= 1")
        self._kernel: Optional[GuestKernel] = None
        self.rounds = rounds
        #: round_times[thread] = [completion cycle of round 0, 1, ...].
        self.round_times: Dict[int, list] = {}

    @abc.abstractmethod
    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        """Declare sync objects and spawn tasks into ``kernel``."""

    # -- round bookkeeping --------------------------------------------- #
    def _note_round(self, thread: int) -> None:
        """Programs call this (via closure) as each round completes."""
        self.round_times.setdefault(thread, []).append(self.kernel.sim.now)

    def rounds_completed(self) -> int:
        """Rounds finished by *every* thread so far."""
        if not self.round_times:
            return 0
        threads = len(self.round_times)
        expected = getattr(self, "_expected_threads", threads)
        if threads < expected:
            return 0
        return min(len(v) for v in self.round_times.values())

    def round_complete_time(self, round_idx: int) -> int:
        """Cycle at which all threads had finished round ``round_idx``."""
        if self.rounds_completed() <= round_idx:
            raise WorkloadError(
                f"round {round_idx} of {self.name} not complete")
        return max(v[round_idx] for v in self.round_times.values())

    def mean_round_cycles(self, rounds: Optional[int] = None) -> float:
        """Average per-round duration over the first ``rounds`` completed
        rounds (default: all completed)."""
        done = self.rounds_completed()
        if done == 0:
            raise WorkloadError(f"{self.name}: no complete rounds")
        n = done if rounds is None else min(rounds, done)
        total = self.round_complete_time(n - 1)
        return total / n

    # ------------------------------------------------------------------ #
    def _mark_installed(self, kernel: GuestKernel) -> None:
        if self._kernel is not None:
            raise WorkloadError(
                f"workload {self.name} already installed "
                f"in {self._kernel.vm.name}")
        self._kernel = kernel

    @property
    def kernel(self) -> GuestKernel:
        if self._kernel is None:
            raise WorkloadError(f"workload {self.name} not installed")
        return self._kernel

    @property
    def installed(self) -> bool:
        return self._kernel is not None

    @property
    def finished(self) -> bool:
        return self.installed and self.kernel.finished

    def runtime_cycles(self) -> int:
        """Completion time (cycles since t=0).  Raises if unfinished."""
        k = self.kernel
        if k.finished_at is None:
            raise WorkloadError(f"workload {self.name} has not finished")
        return k.finished_at

    def describe(self) -> Dict[str, object]:
        """Metadata for experiment reports; subclasses extend."""
        return {"name": self.name}
