"""Workload abstraction and common helpers.

A :class:`Workload` knows how to *install* itself into a guest kernel:
declare the synchronisation objects it needs and spawn its task programs.
Everything after that is emergent from the guest/VMM interaction — the
workload never talks to the scheduler.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel


def jittered(rng: np.random.Generator, mean: float, cv: float) -> int:
    """Draw a positive work amount with the given mean and coefficient of
    variation, using a gamma distribution (mean-preserving, right-skewed —
    a reasonable model for compute-segment lengths).

    ``cv = 0`` returns the mean exactly, making programs deterministic.
    """
    if mean <= 0:
        return 0
    if cv <= 0:
        return int(mean)
    shape = 1.0 / (cv * cv)
    scale = mean * cv * cv
    return max(1, int(rng.gamma(shape, scale)))


class JitteredStream:
    """Batched :func:`jittered` draws for one fixed ``(mean, cv)`` pair.

    Hot program generators (NAS threads) draw thousands of gamma variates
    with constant parameters from a *private* per-thread RNG.  NumPy's
    fixed-parameter batch ``rng.gamma(shape, scale, size=n)`` consumes
    the bit stream exactly as ``n`` successive scalar calls do, so
    refilling a buffer per ``n`` draws returns the identical value
    sequence at a fraction of the per-call overhead.  Because the RNG is
    private to the thread, drawing the batch ahead of need (overdraw at
    program end) cannot perturb any other stream.  The degenerate
    parameter cases mirror :func:`jittered` without touching the RNG.
    """

    __slots__ = ("_rng", "_mean", "_cv", "_shape", "_scale",
                 "_buf", "_idx", "_batch")

    def __init__(self, rng: np.random.Generator, mean: float, cv: float,
                 batch: int = 256) -> None:
        self._rng = rng
        self._mean = mean
        self._cv = cv
        self._shape = 1.0 / (cv * cv) if cv > 0 else 0.0
        self._scale = mean * cv * cv
        self._buf = None
        self._idx = 0
        self._batch = batch

    def draw(self) -> int:
        """One :func:`jittered`-identical variate."""
        if self._mean <= 0:
            return 0
        if self._cv <= 0:
            return int(self._mean)
        buf = self._buf
        idx = self._idx
        if buf is None or idx >= len(buf):
            # astype(int64) truncates toward zero exactly as jittered's
            # int(); tolist() yields plain Python ints so each draw is a
            # list index, not a numpy-scalar conversion.
            buf = self._buf = self._rng.gamma(
                self._shape, self._scale,
                size=self._batch).astype(np.int64).tolist()
            idx = 0
        self._idx = idx + 1
        v = buf[idx]
        return v if v >= 1 else 1


class Workload(abc.ABC):
    """Base class for installable workloads.

    Workloads may run for several *rounds* (repetitions of the whole
    program).  The paper's multi-VM experiments run every benchmark
    "repeatedly with a batch program" and average the first rounds' run
    times while all neighbours are still loaded (Section 5.3); the round
    bookkeeping here supports exactly that measurement.
    """

    #: Human-readable name, set by subclasses.
    name: str = "workload"

    def __init__(self, rounds: int = 1) -> None:
        if rounds < 1:
            raise WorkloadError("rounds must be >= 1")
        self._kernel: Optional[GuestKernel] = None
        self.rounds = rounds
        #: round_times[thread] = [completion cycle of round 0, 1, ...].
        self.round_times: Dict[int, list] = {}

    @abc.abstractmethod
    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        """Declare sync objects and spawn tasks into ``kernel``."""

    # -- round bookkeeping --------------------------------------------- #
    def _note_round(self, thread: int) -> None:
        """Programs call this (via closure) as each round completes."""
        self.round_times.setdefault(thread, []).append(self.kernel.sim.now)

    def rounds_completed(self) -> int:
        """Rounds finished by *every* thread so far."""
        if not self.round_times:
            return 0
        threads = len(self.round_times)
        expected = getattr(self, "_expected_threads", threads)
        if threads < expected:
            return 0
        return min(len(v) for v in self.round_times.values())

    def round_complete_time(self, round_idx: int) -> int:
        """Cycle at which all threads had finished round ``round_idx``."""
        if self.rounds_completed() <= round_idx:
            raise WorkloadError(
                f"round {round_idx} of {self.name} not complete")
        return max(v[round_idx] for v in self.round_times.values())

    def mean_round_cycles(self, rounds: Optional[int] = None) -> float:
        """Average per-round duration over the first ``rounds`` completed
        rounds (default: all completed)."""
        done = self.rounds_completed()
        if done == 0:
            raise WorkloadError(f"{self.name}: no complete rounds")
        n = done if rounds is None else min(rounds, done)
        total = self.round_complete_time(n - 1)
        return total / n

    # ------------------------------------------------------------------ #
    def _mark_installed(self, kernel: GuestKernel) -> None:
        if self._kernel is not None:
            raise WorkloadError(
                f"workload {self.name} already installed "
                f"in {self._kernel.vm.name}")
        self._kernel = kernel

    @property
    def kernel(self) -> GuestKernel:
        if self._kernel is None:
            raise WorkloadError(f"workload {self.name} not installed")
        return self._kernel

    @property
    def installed(self) -> bool:
        return self._kernel is not None

    @property
    def finished(self) -> bool:
        return self.installed and self.kernel.finished

    def runtime_cycles(self) -> int:
        """Completion time (cycles since t=0).  Raises if unfinished."""
        k = self.kernel
        if k.finished_at is None:
            raise WorkloadError(f"workload {self.name} has not finished")
        return k.finished_at

    def describe(self) -> Dict[str, object]:
        """Metadata for experiment reports; subclasses extend."""
        return {"name": self.name}
