"""Fully parameterisable synthetic workloads.

Used by the test suite (small deterministic instances), the ablation
benches (isolating one mechanism at a time), and as a template for users
modelling their own applications.  A workload is a list of
:class:`PhaseSpec` entries executed in order by every thread; each phase
repeats a [compute, sync] pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import units
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.ops import BarrierOp, Compute, Critical, Op, SemDown, SemUp
from repro.workloads.base import Workload, jittered


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: ``repeats`` x [Compute(compute), <sync op>].

    ``sync`` is one of: ``None`` (pure compute), ``"barrier"``,
    ``"critical"`` (against the shared lock pool), ``"sem_pingpong"``
    (even threads V, odd threads P on a shared semaphore — the blocking
    primitive the paper shows virtualization does not hurt).
    """

    compute: int
    repeats: int = 1
    sync: Optional[str] = None
    critical_hold: int = 8_000
    jitter_cv: float = 0.0

    def __post_init__(self) -> None:
        if self.compute < 0 or self.repeats < 1:
            raise WorkloadError("bad phase spec")
        if self.sync not in (None, "barrier", "critical", "sem_pingpong"):
            raise WorkloadError(f"unknown sync kind {self.sync!r}")


#: Named profiles for ``SyntheticWorkload.by_name`` — the declarative
#: workload table used by ``WorkloadSpec(family="synthetic", ...)`` cells
#: and the conformance fuzzer.  Values are (threads, locks, phases).
#: Deliberately small instances: thread counts of 1/2/4 cover the
#: degenerate machine shapes NAS (fixed 4 threads) cannot reach.
SYNTH_PROFILES: Dict[str, Tuple[int, int, Tuple[PhaseSpec, ...]]] = {
    # Tightly barrier-synchronised, concurrent by construction.
    "barrier2": (2, 2, (PhaseSpec(compute=units.ms(0.5), repeats=30,
                                  sync="barrier", jitter_cv=0.10),)),
    "barrier4": (4, 2, (PhaseSpec(compute=units.ms(0.5), repeats=30,
                                  sync="barrier", jitter_cv=0.10),)),
    # Lock-intensive: short holds against a shared pool.
    "critical2": (2, 2, (PhaseSpec(compute=units.ms(0.4), repeats=40,
                                   sync="critical", critical_hold=16_000,
                                   jitter_cv=0.10),)),
    # Blocking semaphore ping-pong (the primitive virtualization should
    # not hurt — Section 5.2).
    "pingpong2": (2, 2, (PhaseSpec(compute=units.ms(0.3), repeats=40,
                                   sync="sem_pingpong"),)),
    # Pure compute, no synchronisation: non-concurrent reference points.
    "compute1": (1, 1, (PhaseSpec(compute=units.ms(1.0), repeats=25,
                                  jitter_cv=0.05),)),
    "compute2": (2, 1, (PhaseSpec(compute=units.ms(1.0), repeats=20,
                                  jitter_cv=0.05),)),
}


class SyntheticWorkload(Workload):
    """Threads all running the same phase list."""

    def __init__(self, name: str, threads: int,
                 phases: List[PhaseSpec],
                 locks: int = 2,
                 rounds: int = 1) -> None:
        super().__init__(rounds=rounds)
        if threads < 1:
            raise WorkloadError("need >= 1 thread")
        if not phases:
            raise WorkloadError("need at least one phase")
        if locks < 1:
            raise WorkloadError("need >= 1 lock")
        self.name = name
        self.threads = threads
        self.phases = list(phases)
        self.nlocks = locks
        self._expected_threads = threads

    @classmethod
    def by_name(cls, name: str, scale: float = 1.0,
                rounds: int = 1) -> "SyntheticWorkload":
        """Build one of the named profiles (see :data:`SYNTH_PROFILES`).

        ``scale`` multiplies every phase's compute segment, leaving the
        synchronisation structure (repeats, barriers, locks) intact —
        the same contract as the NAS/SPEC ``by_name`` constructors.
        """
        prof = SYNTH_PROFILES.get(name)
        if prof is None:
            raise WorkloadError(
                f"unknown synthetic profile {name!r}; "
                f"choose from {sorted(SYNTH_PROFILES)}")
        threads, locks, phases = prof
        if scale != 1.0:
            if scale <= 0:
                raise WorkloadError("scale must be positive")
            phases = [PhaseSpec(compute=max(1, int(p.compute * scale)),
                                repeats=p.repeats, sync=p.sync,
                                critical_hold=p.critical_hold,
                                jitter_cv=p.jitter_cv)
                      for p in phases]
        return cls(name, threads, list(phases), locks=locks, rounds=rounds)

    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        self._mark_installed(kernel)
        if any(p.sync == "barrier" for p in self.phases):
            kernel.barrier(f"{self.name}.bar", self.threads)
        if any(p.sync == "sem_pingpong" for p in self.phases):
            kernel.semaphore(f"{self.name}.sem", 0)
        for i in range(self.nlocks):
            kernel.lock(f"{self.name}.lk{i}")
        for t in range(self.threads):
            trng = np.random.default_rng(rng.integers(0, 2**63))
            vcpu = t % len(kernel.vm.vcpus)
            kernel.spawn(f"{self.name}.t{t}",
                         self._program(t, trng), vcpu_index=vcpu)

    def _program(self, t: int, rng: np.random.Generator) -> Iterator[Op]:
        for _round in range(self.rounds):
            for pi, phase in enumerate(self.phases):
                for r in range(phase.repeats):
                    yield Compute(jittered(rng, phase.compute,
                                           phase.jitter_cv))
                    if phase.sync == "barrier":
                        yield BarrierOp(f"{self.name}.bar")
                    elif phase.sync == "critical":
                        lock = f"{self.name}.lk{(t + r) % self.nlocks}"
                        yield Critical(lock, phase.critical_hold)
                    elif phase.sync == "sem_pingpong":
                        if t % 2 == 0:
                            yield SemUp(f"{self.name}.sem")
                        else:
                            yield SemDown(f"{self.name}.sem")
            self._note_round(t)

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(threads=self.threads, phases=len(self.phases))
        return d
