"""Fully parameterisable synthetic workloads.

Used by the test suite (small deterministic instances), the ablation
benches (isolating one mechanism at a time), and as a template for users
modelling their own applications.  A workload is a list of
:class:`PhaseSpec` entries executed in order by every thread; each phase
repeats a [compute, sync] pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.ops import BarrierOp, Compute, Critical, Op, SemDown, SemUp
from repro.workloads.base import Workload, jittered


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: ``repeats`` x [Compute(compute), <sync op>].

    ``sync`` is one of: ``None`` (pure compute), ``"barrier"``,
    ``"critical"`` (against the shared lock pool), ``"sem_pingpong"``
    (even threads V, odd threads P on a shared semaphore — the blocking
    primitive the paper shows virtualization does not hurt).
    """

    compute: int
    repeats: int = 1
    sync: Optional[str] = None
    critical_hold: int = 8_000
    jitter_cv: float = 0.0

    def __post_init__(self) -> None:
        if self.compute < 0 or self.repeats < 1:
            raise WorkloadError("bad phase spec")
        if self.sync not in (None, "barrier", "critical", "sem_pingpong"):
            raise WorkloadError(f"unknown sync kind {self.sync!r}")


class SyntheticWorkload(Workload):
    """Threads all running the same phase list."""

    def __init__(self, name: str, threads: int,
                 phases: List[PhaseSpec],
                 locks: int = 2) -> None:
        super().__init__()
        if threads < 1:
            raise WorkloadError("need >= 1 thread")
        if not phases:
            raise WorkloadError("need at least one phase")
        if locks < 1:
            raise WorkloadError("need >= 1 lock")
        self.name = name
        self.threads = threads
        self.phases = list(phases)
        self.nlocks = locks

    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        self._mark_installed(kernel)
        if any(p.sync == "barrier" for p in self.phases):
            kernel.barrier(f"{self.name}.bar", self.threads)
        if any(p.sync == "sem_pingpong" for p in self.phases):
            kernel.semaphore(f"{self.name}.sem", 0)
        for i in range(self.nlocks):
            kernel.lock(f"{self.name}.lk{i}")
        for t in range(self.threads):
            trng = np.random.default_rng(rng.integers(0, 2**63))
            vcpu = t % len(kernel.vm.vcpus)
            kernel.spawn(f"{self.name}.t{t}",
                         self._program(t, trng), vcpu_index=vcpu)

    def _program(self, t: int, rng: np.random.Generator) -> Iterator[Op]:
        for pi, phase in enumerate(self.phases):
            for r in range(phase.repeats):
                yield Compute(jittered(rng, phase.compute, phase.jitter_cv))
                if phase.sync == "barrier":
                    yield BarrierOp(f"{self.name}.bar")
                elif phase.sync == "critical":
                    lock = f"{self.name}.lk{(t + r) % self.nlocks}"
                    yield Critical(lock, phase.critical_hold)
                elif phase.sync == "sem_pingpong":
                    if t % 2 == 0:
                        yield SemUp(f"{self.name}.sem")
                    else:
                        yield SemDown(f"{self.name}.sem")

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(threads=self.threads, phases=len(self.phases))
        return d
