"""SPEC CPU2000-rate models: independent compute copies.

The paper uses 176.gcc and 256.bzip2 under the SPEC *rate* metric — four
simultaneous copies per VM, no synchronisation between them — as the
high-throughput, non-concurrent control (Sections 5.1, 5.3).  Because the
copies never synchronise, virtualization costs them nothing beyond their
fair share; what the experiments measure is how much *coscheduling of
neighbour VMs* steals from them (Figures 11–12: CON loses up to 18%,
ASMan at most 8%).

Each copy is pure jittered compute split into segments (a segment is a
natural preemption grain).  The profiles differ only in total work, taken
from the benchmarks' relative SPEC2000 run times, scaled to ~1.2 s base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

import numpy as np

from repro import units
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute, Op
from repro.workloads.base import Workload, jittered


@dataclass(frozen=True)
class SpecCpuProfile:
    name: str
    total_compute: int          # cycles per copy
    segment_cycles: int = units.ms(5)
    jitter_cv: float = 0.10
    copies: int = 4             # the SPEC rate metric runs 4 copies

    def __post_init__(self) -> None:
        if self.total_compute <= 0 or self.segment_cycles <= 0:
            raise WorkloadError(f"{self.name}: bad compute profile")
        if self.copies < 1:
            raise WorkloadError(f"{self.name}: need >= 1 copy")


SPEC_CPU_PROFILES: Dict[str, SpecCpuProfile] = {
    # 176.gcc: shorter, burstier compile workload.
    "176.gcc": SpecCpuProfile("176.gcc", total_compute=units.seconds(1.1),
                              jitter_cv=0.20),
    # 256.bzip2: longer, steadier compression kernel.
    "256.bzip2": SpecCpuProfile("256.bzip2", total_compute=units.seconds(1.3),
                                jitter_cv=0.08),
}


class SpecCpuRateWorkload(Workload):
    """N independent copies of one SPEC CPU2000 benchmark."""

    def __init__(self, profile: SpecCpuProfile, rounds: int = 1) -> None:
        super().__init__(rounds=rounds)
        self.profile = profile
        self.name = f"speccpu.{profile.name}"
        self._expected_threads = profile.copies

    @classmethod
    def by_name(cls, name: str, scale: float = 1.0,
                rounds: int = 1) -> "SpecCpuRateWorkload":
        prof = SPEC_CPU_PROFILES.get(name)
        if prof is None:
            raise WorkloadError(f"unknown SPEC CPU benchmark {name!r}")
        if scale != 1.0:
            prof = SpecCpuProfile(prof.name,
                                  max(1, int(prof.total_compute * scale)),
                                  prof.segment_cycles, prof.jitter_cv,
                                  prof.copies)
        return cls(prof, rounds=rounds)

    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        self._mark_installed(kernel)
        p = self.profile
        for c in range(p.copies):
            crng = np.random.default_rng(rng.integers(0, 2**63))
            kernel.spawn(f"{self.name}.c{c}", self._program(c, crng))

    def _program(self, copy: int, rng: np.random.Generator) -> Iterator[Op]:
        p = self.profile
        for _round in range(self.rounds):
            remaining = p.total_compute
            while remaining > 0:
                seg = min(remaining,
                          jittered(rng, p.segment_cycles, p.jitter_cv))
                yield Compute(seg)
                remaining -= seg
            self._note_round(copy)

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(benchmark=self.profile.name, copies=self.profile.copies,
                 total_compute=self.profile.total_compute)
        return d
