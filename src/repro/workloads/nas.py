"""Synthetic models of the NAS Parallel Benchmarks (OpenMP, class A).

The paper runs NPB 2.3 with 4 threads as its concurrent workloads.  We
cannot run the real codes on a simulator, so each benchmark is modelled by
the *synchronisation structure* that determines its interaction with the
VMM scheduler (DESIGN.md substitution table):

* per-iteration compute per thread (with load-imbalance jitter),
* barrier crossings per iteration (OpenMP ``barrier`` / implicit ones),
* fine-grained spinlock critical sections per iteration (LU's
  point-to-point pipeline synchronisation maps to these),

calibrated so the *relative* sync intensity matches the published NPB
characteristics: LU is the most tightly synchronised (pipelined wavefront,
the paper's running example), SP/MG/CG sync every few milliseconds, BT/FT
have coarser phases, EP is embarrassingly parallel.  Absolute run times
are scaled down (~1.2 s at 100% online rate) to keep simulations fast;
slowdown ratios — what Figures 1, 7 and 9 report — are scale-free.

Thread t's iteration is::

    [ compute, critical ] * criticals_per_iter
    [ compute, barrier  ] * barriers_per_iter

with criticals drawn from a small pool of shared locks, so adjacent
threads genuinely contend (as LU's pipeline neighbours do).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator

import numpy as np

from repro import units
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.ops import BarrierOp, Compute, Critical, FlagSet, FlagWait, Op
from repro.sim.fastforward import fastforward_enabled
from repro.workloads.base import JitteredStream, Workload, jittered

#: Hold time of a modelled kernel critical section (~3.4 us — a futex
#: bucket / runqueue-lock scale hold, the locks the paper instruments).
DEFAULT_HOLD = 8_000


@dataclass(frozen=True)
class NasProfile:
    """Synchronisation profile of one NAS benchmark (4-thread class A)."""

    name: str
    iterations: int
    compute_per_iter: int       # cycles per thread per iteration (mean)
    barriers_per_iter: int
    criticals_per_iter: int
    critical_hold: int = DEFAULT_HOLD
    jitter_cv: float = 0.12     # load imbalance between threads/segments
    threads: int = 4
    #: Wavefront pipeline sweeps per iteration (LU): each sweep makes
    #: thread t busy-wait on thread t-1's progress flag before computing
    #: its share — NPB-LU's point-to-point flag synchronisation.
    pipeline_sweeps: int = 0

    def __post_init__(self) -> None:
        if self.iterations <= 0 or self.compute_per_iter <= 0:
            raise WorkloadError(f"{self.name}: bad iteration profile")
        if self.barriers_per_iter < 0 or self.criticals_per_iter < 0:
            raise WorkloadError(f"{self.name}: negative sync counts")
        if self.threads < 1:
            raise WorkloadError(f"{self.name}: need >= 1 thread")

    def scaled(self, factor: float) -> "NasProfile":
        """Shrink total work by ``factor`` (tests use small instances).
        Scales iteration count, keeping per-iteration granularity."""
        its = max(2, int(round(self.iterations * factor)))
        return replace(self, iterations=its)

    @property
    def total_compute(self) -> int:
        return self.iterations * self.compute_per_iter

    @property
    def sync_ops_total(self) -> int:
        return self.iterations * (self.barriers_per_iter
                                  + self.criticals_per_iter) * self.threads


def _p(name: str, iterations: int, compute_ms: float, barriers: int,
       criticals: int, jitter: float, hold: int = DEFAULT_HOLD,
       sweeps: int = 0) -> NasProfile:
    return NasProfile(name=name, iterations=iterations,
                      compute_per_iter=units.ms(compute_ms),
                      barriers_per_iter=barriers,
                      criticals_per_iter=criticals,
                      critical_hold=hold, jitter_cv=jitter,
                      pipeline_sweeps=sweeps)


#: Class-A-like profiles; ~1.2 s base run each, sync intensity ordered to
#: match Figure 9's slowdown ordering (LU worst, EP ideal).
NAS_PROFILES: Dict[str, NasProfile] = {
    # LU: pipelined wavefront — two triangular-solve sweeps per iteration
    # synchronised thread-to-thread through busy-wait flags, plus barriers
    # between phases and kernel critical sections on shared structures.
    "LU": _p("LU", iterations=250, compute_ms=4.8, barriers=2,
             criticals=16, jitter=0.15, hold=16_000, sweeps=2),
    # SP: scalar penta-diagonal solver, frequent sweeps with barriers.
    "SP": _p("SP", iterations=220, compute_ms=5.5, barriers=3,
             criticals=2, jitter=0.12),
    # MG: multigrid V-cycles, a barrier per level transition.
    "MG": _p("MG", iterations=350, compute_ms=3.4, barriers=3,
             criticals=1, jitter=0.15),
    # CG: conjugate gradient, reductions every sparse matvec.
    "CG": _p("CG", iterations=300, compute_ms=4.0, barriers=2,
             criticals=2, jitter=0.20),
    # BT: block tri-diagonal, coarser phases than SP.
    "BT": _p("BT", iterations=150, compute_ms=8.0, barriers=2,
             criticals=1, jitter=0.10),
    # FT: FFT with a few large all-to-all transposes.
    "FT": _p("FT", iterations=60, compute_ms=20.0, barriers=2,
             criticals=1, jitter=0.10),
    # EP: embarrassingly parallel; a handful of barriers in total.
    "EP": _p("EP", iterations=8, compute_ms=150.0, barriers=1,
             criticals=0, jitter=0.05),
}


class NasBenchmark(Workload):
    """One NAS benchmark instance, installable into a guest kernel."""

    def __init__(self, profile: NasProfile, rounds: int = 1) -> None:
        super().__init__(rounds=rounds)
        self.profile = profile
        self.name = f"nas.{profile.name.lower()}"
        self._expected_threads = profile.threads

    @classmethod
    def by_name(cls, name: str, scale: float = 1.0,
                rounds: int = 1) -> "NasBenchmark":
        prof = NAS_PROFILES.get(name.upper())
        if prof is None:
            raise WorkloadError(f"unknown NAS benchmark {name!r}")
        if scale != 1.0:
            prof = prof.scaled(scale)
        return cls(prof, rounds=rounds)

    # ------------------------------------------------------------------ #
    def install(self, kernel: GuestKernel, rng: np.random.Generator) -> None:
        self._mark_installed(kernel)
        p = self.profile
        if p.threads > len(kernel.vm.vcpus):
            raise WorkloadError(
                f"{self.name}: {p.threads} threads exceed "
                f"{len(kernel.vm.vcpus)} VCPUs (CPU-bound NPB runs do not "
                f"oversubscribe, Section 5.2)")
        kernel.barrier(f"{self.name}.bar", p.threads)
        # Lock pool: adjacent threads share locks, like pipeline neighbours.
        self._nlocks = max(2, p.threads)
        for i in range(self._nlocks):
            kernel.lock(f"{self.name}.lk{i}")
        for t in range(p.threads):
            trng = np.random.default_rng(rng.integers(0, 2**63))
            kernel.spawn(f"{self.name}.t{t}",
                         self._program(t, trng), vcpu_index=t)

    def _program(self, t: int, rng: np.random.Generator) -> Iterator[Op]:
        p = self.profile
        segments = (p.criticals_per_iter + p.barriers_per_iter
                    + p.pipeline_sweeps)
        seg_mean = p.compute_per_iter / max(1, segments)
        # Every draw in this program uses the constant (seg_mean,
        # jitter_cv) pair — with segments == 0 the only draw site has
        # mean == compute_per_iter == seg_mean — so fast-forward batches
        # them through one JitteredStream on the thread-private RNG
        # (bit-identical to the scalar calls; see JitteredStream).
        if fastforward_enabled():
            draw = JitteredStream(rng, seg_mean, p.jitter_cv).draw
        else:
            def draw() -> int:
                return jittered(rng, seg_mean, p.jitter_cv)
        # Ops are frozen (immutable) dataclasses, so the sync ops whose
        # fields repeat every iteration are built once and re-yielded;
        # name strings for the per-sweep flag ops are likewise hoisted.
        bar_op = BarrierOp(f"{self.name}.bar")
        crit_ops = [Critical(f"{self.name}.lk{(t + c) % self._nlocks}",
                             p.critical_hold)
                    for c in range(p.criticals_per_iter)]
        pred_flag = f"{self.name}.pipe{t - 1}"
        my_flag = f"{self.name}.pipe{t}"
        sweep = 0  # global pipeline step counter across rounds
        for _round in range(self.rounds):
            for it in range(p.iterations):
                for s in range(p.pipeline_sweeps):
                    sweep += 1
                    # Wavefront: wait for the predecessor thread's flag,
                    # compute this thread's share, publish progress.
                    if t > 0:
                        yield FlagWait(pred_flag, sweep)
                    yield Compute(draw())
                    yield FlagSet(my_flag, sweep)
                for crit in crit_ops:
                    yield Compute(draw())
                    yield crit
                for _ in range(p.barriers_per_iter):
                    yield Compute(draw())
                    yield bar_op
                if segments == 0:
                    yield Compute(draw())
            self._note_round(t)

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(benchmark=self.profile.name,
                 iterations=self.profile.iterations,
                 threads=self.profile.threads,
                 total_compute=self.profile.total_compute)
        return d
