"""Workload models.

Synthetic equivalents of the paper's benchmarks (see DESIGN.md's
substitution table): the seven NAS Parallel Benchmarks used as concurrent
workloads, SPECjbb2005 as the throughput/scalability workload, and SPEC
CPU2000-rate copies as the non-concurrent control.  All are expressed as
op-stream programs over the guest kernel's synchronisation primitives, so
their interaction with the VMM scheduler is emergent rather than scripted.
"""

from repro.workloads.base import Workload, jittered
from repro.workloads.nas import NAS_PROFILES, NasBenchmark, NasProfile
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.speccpu import SpecCpuRateWorkload, SPEC_CPU_PROFILES
from repro.workloads.synthetic import SyntheticWorkload, PhaseSpec
from repro.workloads.trace import TraceWorkload, load_trace, load_trace_file

__all__ = [
    "Workload", "jittered",
    "NAS_PROFILES", "NasBenchmark", "NasProfile",
    "SpecJbbWorkload",
    "SpecCpuRateWorkload", "SPEC_CPU_PROFILES",
    "SyntheticWorkload", "PhaseSpec",
    "TraceWorkload", "load_trace", "load_trace_file",
]
